#include "textflag.h"

// func cputicks() int64
// Reads the CPU's time-stamp counter. Plain RDTSC (not RDTSCP): the ~ten
// cycles of possible out-of-order skew are far below the monitor's
// nanosecond needs, and the serializing variant would double the cost.
TEXT ·cputicks(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET

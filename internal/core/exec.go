package core

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/monitor"
	"dope/internal/platform"
)

// Exec is the DoPE executive (the paper's DoPE-Executive, Figure 8). It
// owns the hardware-context pool, the monitors, the current configuration,
// and the reconfiguration protocol. Construct with New, launch with Start,
// and join with Wait — the Go spelling of DoPE::create / DoPE::destroy.
type Exec struct {
	root *NestSpec
	// name identifies this executive when several share a machine (the
	// tenancy arbiter registers each tenant's nest under its tenant name);
	// empty for a single-tenant process.
	name     string
	contexts platform.ContextPool
	features *platform.Features
	clock    platform.Clock
	// The Begin/End hot path's clock: nowNanos returns the current time as
	// unix nanoseconds consistent with clock.Now(). For the wall clock it
	// reads only the runtime's monotonic counter (roughly half the cost of
	// time.Now) and rebases it onto a wall epoch captured at construction;
	// virtual clocks go through the slowClock func instead. When the
	// machine's TSC passed calibration (tscclock.go), tscClock selects the
	// cheaper raw-counter read; the flag is resolved once at construction
	// so the hot path pays one branch, not a global lookup.
	tscClock  bool
	fastClock bool
	epochUnix int64 // clock.Now().UnixNano() at construction
	epochMono int64 // runtime nanotime() at construction
	slowClock func() int64
	mon       *monitor.Registry
	interval  time.Duration
	trace     func(Event)
	// tbuf batches trace events (trace.go): emitters enqueue, the control
	// and watchdog ticks plus drain boundaries flush in emission order,
	// and serve's shutdown flush runs after both tick loops have exited
	// (loopsWG) and before doneCh closes, so Wait returns with every event
	// delivered. Nil when no trace callback is installed.
	tbuf    *traceBuf
	loopsWG sync.WaitGroup

	// Trace taps (TapTrace): extra event consumers alongside the WithTrace
	// callback — the live-ops collector subscribes here without displacing
	// the application's own trace. The slice is copy-on-write under tapMu;
	// hasTap is the emit fast path's "any consumer at all?" check.
	tapMu  sync.Mutex
	taps   atomic.Pointer[[]traceTap]
	hasTap atomic.Bool
	tapSeq uint64

	// rejectedFn, when set (WithRejectedGauge), samples the admission
	// refusals charged to this executive — the tenancy layer's Admit
	// refusals — into Report.Rejected so recorders and mechanisms see the
	// shed work that never reached a stage queue.
	rejectedFn func() uint64

	mechMu sync.RWMutex
	mech   Mechanism

	// installMu serializes configuration installs (SetConfig vs. control
	// tick vs. a second SetConfig) and the registration of a new run's
	// worker groups, closing the load/compare/store and register/resize
	// races.
	installMu       sync.Mutex
	respawnOnResize bool
	protocolCheck   bool

	cfg     atomic.Pointer[Config]
	curRun  atomic.Pointer[run]
	stop    atomic.Bool
	started atomic.Bool
	doneCh  chan struct{}
	ctrlCh  chan struct{}
	// startAt holds the Start timestamp as unix nanoseconds; atomic
	// because Uptime/Report may run concurrently with Start.
	startAt atomic.Int64

	errMu  sync.Mutex
	runErr error

	reconfigs atomic.Uint64
	suspends  atomic.Uint64
	resizes   atomic.Uint64

	// Failure handling defaults; stage specs may override per stage (see
	// failure.go and StageSpec.OnFailure).
	failPolicy   FailurePolicy
	failBudget   int
	failWindow   time.Duration
	restartBase  time.Duration
	restartMax   time.Duration
	taskFailures atomic.Uint64

	// Stall tolerance (stall.go): the executive-wide invocation deadline
	// default, the drain timeout for suspensions, the watchdog's patrol
	// interval override, and the watchdog's registry of live worker groups.
	deadline     time.Duration
	drainTimeout time.Duration
	stallCheck   time.Duration
	taskStalls   atomic.Uint64
	watchMu      sync.Mutex
	watched      map[*workerGroup]struct{}
	shedSeen     map[monitor.Key]uint64
}

// run is one suspension domain: the lifetime of one set of top-level task
// instances between (re)spawns. It holds the stage worker groups of the
// top-level nest so that extent-only reconfigurations can resize stages in
// place instead of suspending everything.
type run struct {
	suspend atomic.Bool
	// suspendAt is when suspension was requested (unix nanoseconds); the
	// drain watchdog measures the drain's age against it.
	suspendAt atomic.Int64

	mu     sync.Mutex
	groups []*workerGroup
}

func (r *run) suspending() bool { return r.suspend.Load() }

func (r *run) requestSuspend() { r.suspend.Store(true) }

// cancelAll closes every registered top-level slot's Done channel so
// cooperative functors observe the drain request without polling. Nested
// groups are not registered here; they drain naturally with their parent's
// current work item (the same scoping as Worker.Suspending), and the drain
// watchdog covers the ones that do not.
func (r *run) cancelAll() {
	r.mu.Lock()
	groups := r.groups
	r.mu.Unlock()
	for _, g := range groups {
		g.cancelSlots()
	}
}

// setGroups registers the top-level stage worker groups. Called with the
// executive's installMu held so registration cannot interleave with a
// resize.
func (r *run) setGroups(gs []*workerGroup) {
	r.mu.Lock()
	r.groups = gs
	r.mu.Unlock()
}

// resizeOp describes one in-place stage resize for counters and traces.
type resizeOp struct {
	stage    string
	from, to int
}

// resize steers each registered group toward cfg's extents. Groups spawned
// under a different alternative are skipped (an alternative change goes
// through suspension, never through here), as is a run that is already
// suspending — its slots are draining and will respawn under cfg anyway.
func (r *run) resize(cfg *Config) []resizeOp {
	if r.suspending() {
		return nil
	}
	r.mu.Lock()
	groups := r.groups
	r.mu.Unlock()
	var ops []resizeOp
	for i, g := range groups {
		if g.altIdx != cfg.Alt {
			continue
		}
		want := g.st.clampExtent(cfg.Extent(i))
		if from, changed := g.resize(want); changed {
			ops = append(ops, resizeOp{stage: g.st.Name, from: from, to: want})
		}
	}
	return ops
}

// Option configures an Exec.
type Option func(*Exec)

// WithContexts sets the number of hardware contexts (default 24, the
// paper's evaluation machine).
func WithContexts(n int) Option {
	return func(e *Exec) { e.contexts = platform.NewContexts(n) }
}

// WithContextPool installs a caller-owned context pool, letting several
// executives share one platform. The pool may be a *platform.Contexts
// (direct sharing) or a *platform.TenantPool (a quota-bounded view granted
// by a tenancy arbiter).
func WithContextPool(p platform.ContextPool) Option {
	return func(e *Exec) {
		if p != nil {
			e.contexts = p
		}
	}
}

// WithName sets the executive's tenant identity: the name shows up on
// reports, admin surfaces, and run errors so that a machine running many
// nests can attribute behavior to the tenant that caused it.
func WithName(name string) Option {
	return func(e *Exec) { e.name = name }
}

// WithMechanism installs the adaptation mechanism. A nil mechanism leaves
// the configuration static (the baseline mode of the evaluation).
func WithMechanism(m Mechanism) Option {
	// Options run inside NewExec on a not-yet-shared Exec; the construction
	// phase is invisible to lockcheck because the fresh value lives in the
	// caller.
	return func(e *Exec) { e.mech = m } //dopevet:ignore lockcheck option applied in NewExec before the Exec escapes
}

// WithControlInterval sets how often the executive consults the mechanism.
func WithControlInterval(d time.Duration) Option {
	return func(e *Exec) {
		if d > 0 {
			e.interval = d
		}
	}
}

// WithMonitorAlpha sets the smoothing factor of the monitors' EWMAs.
func WithMonitorAlpha(alpha float64) Option {
	return func(e *Exec) { e.mon = monitor.NewRegistry(alpha) }
}

// WithClock substitutes the clock (tests, simulation).
func WithClock(c platform.Clock) Option {
	return func(e *Exec) {
		if c != nil {
			e.clock = c
		}
	}
}

// WithProtocolCheck arms the runtime Begin/End misuse detector: a functor
// that calls Begin twice without an intervening End, calls End without a
// Begin, or enters RunNest while holding a platform context panics with a
// "dope: protocol violation" message instead of silently corrupting the
// monitors. The panic is recovered by the worker loop and surfaces as the
// run's error. Also enabled by DOPE_DEBUG=1 in the environment. The static
// counterpart is cmd/dope-vet.
func WithProtocolCheck() Option {
	return func(e *Exec) { e.protocolCheck = true }
}

// WithTrace installs a callback that receives executive events
// (reconfigurations, suspensions, completion). The callback must be fast
// and must not call back into the Exec.
func WithTrace(fn func(Event)) Option {
	return func(e *Exec) { e.trace = fn }
}

// WithRejectedGauge registers a sampler for the admission refusals charged
// to this executive. A multi-tenant arbiter wires the tenant's Admit-refusal
// counter here so Report.Rejected (and therefore recorded replay logs and
// the live-ops series) carries the arrivals that were turned away before any
// stage queue saw them.
func WithRejectedGauge(fn func() uint64) Option {
	return func(e *Exec) { e.rejectedFn = fn }
}

// WithInitialConfig sets the starting configuration (normalized against the
// root spec). Without it the executive starts from DefaultConfig.
func WithInitialConfig(cfg *Config) Option {
	return func(e *Exec) {
		if cfg != nil {
			e.cfg.Store(cfg.Clone())
		}
	}
}

// WithFeatures installs a caller-owned platform feature registry.
func WithFeatures(f *platform.Features) Option {
	return func(e *Exec) {
		if f != nil {
			e.features = f
		}
	}
}

// WithWholeNestRespawn restores the pre-worker-group behavior in which any
// root-level change — extents included — suspends, drains, and respawns the
// whole nest. It exists as the A/B baseline for measuring what in-place
// resizing saves (the reconfig-dip experiment); applications should not
// need it.
func WithWholeNestRespawn() Option {
	return func(e *Exec) { e.respawnOnResize = true }
}

// DefaultContexts is the size of the paper's evaluation platform.
const DefaultContexts = 24

// New validates the spec tree and constructs an executive.
func New(root *NestSpec, opts ...Option) (*Exec, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	e := &Exec{
		root:        root,
		clock:       platform.WallClock{},
		interval:    10 * time.Millisecond,
		doneCh:      make(chan struct{}),
		ctrlCh:      make(chan struct{}),
		failPolicy:  FailStop,
		failBudget:  DefaultFailureBudget,
		failWindow:  DefaultFailureWindow,
		restartBase: defaultRestartBackoff,
		restartMax:  defaultRestartBackoffMax,
		watched:     make(map[*workerGroup]struct{}),
		shedSeen:    make(map[monitor.Key]uint64),
	}
	if os.Getenv("DOPE_DEBUG") == "1" {
		e.protocolCheck = true
	}
	for _, o := range opts {
		o(e)
	}
	// Always allocated (a few hundred bytes), even with no trace callback:
	// tests and tools may install e.trace after construction.
	e.tbuf = new(traceBuf)
	if e.contexts == nil {
		e.contexts = platform.NewContexts(DefaultContexts)
	}
	if e.features == nil {
		e.features = platform.NewFeatures()
	}
	if e.mon == nil {
		e.mon = monitor.NewRegistry(0.25)
	}
	if e.cfg.Load() == nil {
		e.cfg.Store(DefaultConfig(root))
	}
	cfg := e.cfg.Load().Clone()
	cfg.Normalize(root)
	e.cfg.Store(cfg)
	e.features.Register(platform.FeatureHardwareContexts,
		func() float64 { return float64(e.contexts.N()) })
	e.features.Register(platform.FeatureBusyContexts,
		func() float64 { return float64(e.contexts.Busy()) })
	if _, ok := e.clock.(platform.WallClock); ok {
		calibrateTSC()
		e.tscClock = tscOK
		e.fastClock = true
		e.epochUnix = time.Now().UnixNano()
		e.epochMono = nanotime()
	} else {
		clk := e.clock
		e.slowClock = func() int64 { return clk.Now().UnixNano() }
	}
	return e, nil
}

// nowNanos is the Begin/End hot path's clock read; see the fastClock fields
// and tscclock.go. Preference order: calibrated TSC, runtime monotonic
// counter rebased onto the wall epoch, then the virtual clock's func.
func (e *Exec) nowNanos() int64 {
	if e.tscClock {
		return tscNow()
	}
	if e.fastClock {
		return e.epochUnix + nanotime() - e.epochMono
	}
	return e.slowClock()
}

// Contexts returns the executive's hardware-context pool (the machine pool,
// or this tenant's quota-bounded view of it).
func (e *Exec) Contexts() platform.ContextPool { return e.contexts }

// Name returns the executive's tenant identity ("" for a single-tenant
// process).
func (e *Exec) Name() string { return e.name }

// Features returns the platform feature registry for mechanism-developer
// registrations (Figure 9).
func (e *Exec) Features() *platform.Features { return e.features }

// Clock returns the executive's clock.
func (e *Exec) Clock() platform.Clock { return e.clock }

// Uptime returns the time since Start.
func (e *Exec) Uptime() time.Duration {
	at := e.startAt.Load()
	if at == 0 {
		return 0
	}
	return e.clock.Since(time.Unix(0, at))
}

// Reconfigurations returns how many configuration changes have been applied.
func (e *Exec) Reconfigurations() uint64 { return e.reconfigs.Load() }

// Suspensions returns how many full suspend/respawn cycles have occurred.
func (e *Exec) Suspensions() uint64 { return e.suspends.Load() }

// Resizes returns how many in-place stage resizes have been applied (one
// per stage whose extent changed, so a single reconfiguration may count
// several). Extent-only mechanisms like WQ-Linear drive this counter up
// while Suspensions stays flat.
func (e *Exec) Resizes() uint64 { return e.resizes.Load() }

// CurrentConfig returns a copy of the active configuration.
func (e *Exec) CurrentConfig() *Config { return e.cfg.Load().Clone() }

// SetConfig installs cfg (normalized) as the active configuration.
// Extent-only changes resize the affected stages' worker groups in place;
// an alternative switch goes through the suspension protocol. Experiments
// use this to pin static configurations; mechanisms normally go through the
// control loop instead.
func (e *Exec) SetConfig(cfg *Config) {
	if cfg == nil {
		return
	}
	nc := cfg.Clone()
	nc.Normalize(e.root)
	e.install(nc, "")
}

// install makes nc the active configuration and applies the cheapest
// reconfiguration protocol that realizes it: nothing beyond the store for
// child-only changes, in-place worker-group resizes for root extent
// changes, and suspend→drain→respawn only when the root alternative
// changed (or WithWholeNestRespawn forces the legacy path). nc must already
// be normalized and owned by the executive. Installs are serialized by
// installMu so two concurrent callers cannot both compare against the same
// stale configuration.
func (e *Exec) install(nc *Config, mechName string) {
	e.installMu.Lock()
	old := e.cfg.Load()
	if nc.Equal(old) {
		e.installMu.Unlock()
		return
	}
	e.cfg.Store(nc)
	e.reconfigs.Add(1)
	respawn := rootAltDiffers(old, nc) ||
		(e.respawnOnResize && rootLevelDiffers(old, nc))
	var ops []resizeOp
	if !respawn {
		if r := e.curRun.Load(); r != nil {
			ops = r.resize(nc)
		}
	}
	e.installMu.Unlock()
	e.emit(Event{Kind: EventReconfigure, Config: nc.Clone(), Mechanism: mechName})
	for _, op := range ops {
		e.resizes.Add(1)
		e.emit(Event{
			Kind: EventResize, Stage: op.stage,
			FromExtent: op.from, ToExtent: op.to,
			Config: nc.Clone(), Mechanism: mechName,
		})
	}
	if respawn {
		e.suspendCurrent()
	}
}

// Start launches the application under the executive. It returns an error
// if called twice.
func (e *Exec) Start() error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("core: executive already started")
	}
	at := e.clock.Now().UnixNano()
	if at == 0 {
		at = 1 // virtual clocks may start at the epoch; 0 means "not started"
	}
	e.startAt.Store(at)
	// The first run is registered before the serve goroutine exists so a
	// reconfiguration issued immediately after Start still finds a run to
	// suspend.
	e.curRun.Store(&run{})
	e.loopsWG.Add(2) // control and watchdog; serve joins them at shutdown
	go e.serve()
	go e.control()
	go e.watchdog()
	return nil
}

// Wait blocks until the application finishes naturally or Stop is called,
// and returns the first task error if any. This is DoPE::destroy's "wait
// for registered tasks to end".
func (e *Exec) Wait() error {
	<-e.doneCh
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.runErr
}

// Run is Start followed by Wait.
func (e *Exec) Run() error {
	if err := e.Start(); err != nil {
		return err
	}
	return e.Wait()
}

// Stop asks the executive to shut down: the current run is suspended and
// not respawned. Stop does not wait; call Wait to join.
func (e *Exec) Stop() {
	e.stop.Store(true)
	e.suspendCurrent()
}

// Done returns a channel closed when the application has ended.
func (e *Exec) Done() <-chan struct{} { return e.doneCh }

func (e *Exec) suspendCurrent() {
	if r := e.curRun.Load(); r != nil {
		if !r.suspend.Swap(true) {
			at := e.clock.Now().UnixNano()
			if at == 0 {
				at = 1 // virtual clocks may sit at the epoch; 0 means "not suspending"
			}
			r.suspendAt.Store(at)
			e.suspends.Add(1)
			e.emit(Event{Kind: EventSuspend})
			r.cancelAll()
		}
	}
}

// serve is the root task loop: spawn the root nest, and on suspension
// respawn it under the then-current configuration.
func (e *Exec) serve() {
	defer func() {
		// ctrlCh is already closed (the defer below runs first), so both
		// tick loops are winding down; once they have exited no emitter
		// but a late user-goroutine install remains, and the final flush
		// delivers everything buffered before Wait can return.
		e.loopsWG.Wait()
		if e.hasTraceConsumer() {
			e.tbuf.flushFinal(e.deliver)
		}
		close(e.doneCh)
	}()
	defer close(e.ctrlCh)
	for {
		r := e.curRun.Load()
		st, err := e.runNest(r, e.root, []string{e.root.Name}, nil, true)
		if err != nil {
			e.errMu.Lock()
			e.runErr = err
			e.errMu.Unlock()
			e.emit(Event{Kind: EventError, Err: err})
			return
		}
		if st == Finished || e.stop.Load() {
			e.emit(Event{Kind: EventFinish})
			return
		}
		// Suspended: the new configuration is already installed; resume.
		// Stop is re-checked after the store: a Stop that lands between the
		// check above and the store suspends only the already-drained old
		// run, and the fresh run would otherwise never observe it — Wait
		// would block until the new run finished naturally (forever, for a
		// server workload). The atomics are sequentially consistent, so a
		// Stop whose flag this read misses must load the run stored above
		// and suspend that.
		e.curRun.Store(&run{})
		if e.stop.Load() {
			e.emit(Event{Kind: EventFinish})
			return
		}
		e.emit(Event{Kind: EventResume, Config: e.cfg.Load().Clone()})
		// Drain boundary: the suspended run's buffered events (suspend,
		// stalls, sheds, the resume above) go out before the next run's.
		e.flushTrace()
	}
}

// Mechanism returns the currently installed mechanism (nil = static).
func (e *Exec) Mechanism() Mechanism {
	e.mechMu.RLock()
	defer e.mechMu.RUnlock()
	return e.mech
}

// SetMechanism swaps the adaptation mechanism at run time — the
// administrator changing the system's performance goal while it serves
// (§4). A nil mechanism freezes the current configuration. The new
// mechanism takes effect at the next control tick.
func (e *Exec) SetMechanism(m Mechanism) {
	e.mechMu.Lock()
	e.mech = m
	e.mechMu.Unlock()
}

// control periodically consults the mechanism and applies its decisions.
// The ticker comes from the executive's clock, so under a VirtualClock the
// control loop is driven deterministically by Advance/Set.
func (e *Exec) control() {
	defer e.loopsWG.Done()
	ticker := e.clock.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.ctrlCh:
			return
		case <-ticker.C():
		}
		// Absorb the per-slot accumulators every tick so the EWMAs advance
		// even when no mechanism or query is folding them on demand, and
		// push out whatever the event buffer has batched since last tick.
		e.mon.FoldAll()
		e.flushTrace()
		mech := e.Mechanism()
		if mech == nil {
			continue
		}
		rep := e.Report()
		newCfg := mech.Reconfigure(rep)
		if newCfg == nil {
			continue
		}
		newCfg.Normalize(e.root)
		e.install(newCfg, mech.Name())
	}
}

// rootAltDiffers reports whether the top-level alternative changed, which
// swaps the stage set itself (fusion ↔ pipeline) and therefore requires the
// full suspension protocol. Extent-only differences do not qualify: they
// are absorbed by in-place worker-group resizes.
func rootAltDiffers(a, b *Config) bool {
	if a == nil || b == nil {
		return true
	}
	return a.Alt != b.Alt || len(a.Extents) != len(b.Extents)
}

// rootLevelDiffers reports whether the top-level alternative or extents
// changed. It survives as the trigger predicate for the legacy
// WithWholeNestRespawn mode, where any root change respawns the long-lived
// root task instances.
func rootLevelDiffers(a, b *Config) bool {
	if a == nil || b == nil {
		return true
	}
	if a.Alt != b.Alt || len(a.Extents) != len(b.Extents) {
		return true
	}
	for i := range a.Extents {
		if a.Extents[i] != b.Extents[i] {
			return true
		}
	}
	return false
}

// configAt resolves the configuration node for the nest at path (root name
// first), materializing defaults for unconfigured children. The returned
// node is treated as immutable.
func (e *Exec) configAt(path []string) (*NestSpec, *Config) {
	spec := e.root
	cfg := e.cfg.Load()
	for _, name := range path[1:] {
		child := findChildSpec(spec, name)
		if child == nil {
			// Undeclared nest: run it with defaults.
			return spec, DefaultConfig(spec)
		}
		var ccfg *Config
		if cfg != nil {
			ccfg = cfg.Child(name)
		}
		if ccfg == nil {
			ccfg = DefaultConfig(child)
		}
		spec, cfg = child, ccfg
	}
	return spec, cfg
}

// findChildSpec locates the nested nest with the given name under any
// alternative of spec.
func findChildSpec(spec *NestSpec, name string) *NestSpec {
	for _, alt := range spec.Alts {
		for i := range alt.Stages {
			if n := alt.Stages[i].Nest; n != nil && n.Name == name {
				return n
			}
		}
	}
	return nil
}

// runNest instantiates and executes one nest under the current
// configuration and blocks until every stage's worker group has drained.
// For the top-level nest the groups are registered with the run so that
// later extent-only reconfigurations can resize them in place; nested
// instances keep the paper's semantics of adapting at the next
// instantiation.
func (e *Exec) runNest(r *run, spec *NestSpec, path []string, item any, top bool) (Status, error) {
	resolved, cfg := e.configAt(path)
	if resolved != spec && resolved.Name != spec.Name {
		// Undeclared nest: fall back to its own defaults.
		cfg = DefaultConfig(spec)
	}
	alt := spec.Alt(cfg.Alt)
	inst, err := alt.Make(item)
	if err != nil {
		return Finished, fmt.Errorf("core: instantiating %s/%s: %w",
			strings.Join(path, "/"), alt.Name, err)
	}
	if inst == nil || len(inst.Stages) != len(alt.Stages) {
		return Finished, fmt.Errorf("core: alternative %q of nest %q built %d stages, spec has %d",
			alt.Name, spec.Name, len(inst.Stages), len(alt.Stages))
	}
	nestName := strings.Join(path, "/")

	groups := make([]*workerGroup, 0, len(alt.Stages))
	releases := make([]func(), 0, len(alt.Stages))
	for i := range alt.Stages {
		st := &alt.Stages[i]
		fns := inst.Stages[i]
		if fns.Fn == nil {
			for _, rel := range releases {
				rel()
			}
			return Finished, fmt.Errorf("core: stage %q of nest %q has no functor", st.Name, spec.Name)
		}
		key := monitor.Key{Nest: nestName, Stage: st.Name}
		if fns.Init != nil {
			fns.Init()
		}
		policy := st.OnFailure
		if policy == FailDefault {
			policy = e.failPolicy
		}
		budget := st.FailureBudget
		if budget <= 0 {
			budget = e.failBudget
		}
		window := st.FailureWindow
		if window <= 0 {
			window = e.failWindow
		}
		deadline := st.Deadline
		if deadline <= 0 {
			deadline = e.deadline
		}
		groups = append(groups, &workerGroup{
			exec: e, r: r, key: key, stats: e.mon.Stage(key),
			st: st, fns: fns, path: path, top: top, item: item,
			altIdx: cfg.Alt, idx: i,
			policy: policy, budget: budget, window: window,
			deadline: deadline,
			windowed: deadline > 0 || e.drainTimeout > 0,
			target:   st.clampExtent(cfg.Extent(i)),
			done:     make(chan struct{}),
		})
		relLoad := e.mon.RegisterLoad(key, fns.Load)
		relShed := e.mon.RegisterShed(key, fns.Shed)
		relSoj := e.mon.RegisterSojourn(key, fns.Sojourn)
		releases = append(releases, func() { relLoad(); relShed(); relSoj() })
	}
	if top {
		// Register the groups and re-resolve the extents under the install
		// lock: a SetConfig between configAt above and this point found no
		// groups to resize, so its extents must be adopted here or the
		// change would be lost until the next reconfiguration.
		e.installMu.Lock()
		if cur := e.cfg.Load(); cur != nil && cur.Alt == cfg.Alt {
			for i, g := range groups {
				g.setTarget(g.st.clampExtent(cur.Extent(i)))
			}
		}
		r.setGroups(groups)
		e.installMu.Unlock()
	}
	for _, g := range groups {
		g.start()
	}

	var nestWG sync.WaitGroup
	for i, g := range groups {
		nestWG.Add(1)
		go func(g *workerGroup, fini, release func()) {
			defer nestWG.Done()
			g.wait()
			if fini != nil {
				fini()
			}
			release()
			g.stats.ObserveInstanceDone()
		}(g, inst.Stages[i].Fini, releases[i])
	}
	nestWG.Wait()
	for _, g := range groups {
		if g.suspended() {
			return Suspended, nil
		}
	}
	if top && r.suspending() {
		// All slots were abandoned by the drain watchdog rather than
		// exiting Suspended themselves; the run still drained for a
		// suspension, not to completion, so serve must respawn (or honor
		// Stop), not report Finished.
		return Suspended, nil
	}
	return Finished, nil
}

func (e *Exec) emit(ev Event) {
	if e.trace == nil && !e.hasTap.Load() {
		return
	}
	ev.Time = e.Uptime()
	e.tbuf.enqueue(ev)
}

// traceTap is one TapTrace registration; the id makes release exact even
// when the same func value is tapped twice.
type traceTap struct {
	id uint64
	fn func(Event)
}

// TapTrace registers an additional trace consumer alongside any WithTrace
// callback: every buffered event is delivered to the callback and to every
// live tap, in the same emission order. Taps must be fast and must not call
// back into the Exec (the same contract as WithTrace). The returned release
// removes the tap; events flushed after release are no longer delivered to
// it. Safe to call on a running executive.
func (e *Exec) TapTrace(fn func(Event)) (release func()) {
	if fn == nil {
		return func() {}
	}
	e.tapMu.Lock()
	e.tapSeq++
	id := e.tapSeq
	var cur []traceTap
	if p := e.taps.Load(); p != nil {
		cur = *p
	}
	next := make([]traceTap, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = traceTap{id: id, fn: fn}
	e.taps.Store(&next)
	e.hasTap.Store(true)
	e.tapMu.Unlock()
	return func() {
		e.tapMu.Lock()
		defer e.tapMu.Unlock()
		p := e.taps.Load()
		if p == nil {
			return
		}
		next := make([]traceTap, 0, len(*p))
		for _, t := range *p {
			if t.id != id {
				next = append(next, t)
			}
		}
		e.taps.Store(&next)
		e.hasTap.Store(len(next) > 0)
	}
}

// deliver fans one flushed event out to the WithTrace callback and every
// live tap, preserving emission order for each consumer (the flusher calls
// deliver sequentially).
func (e *Exec) deliver(ev Event) {
	if e.trace != nil {
		e.trace(ev)
	}
	if p := e.taps.Load(); p != nil {
		for _, t := range *p {
			t.fn(ev)
		}
	}
}

// hasTraceConsumer reports whether anything would receive a flushed event.
func (e *Exec) hasTraceConsumer() bool {
	return e.trace != nil || e.hasTap.Load()
}

// flushTrace delivers buffered events to the trace callback and taps in
// emission order. Called from the control and watchdog ticks and at drain
// boundaries; a no-op when no consumer is installed.
func (e *Exec) flushTrace() {
	if e.hasTraceConsumer() {
		e.tbuf.flush(e.deliver)
	}
}

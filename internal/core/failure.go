package core

import (
	"fmt"
	"time"

	"dope/internal/monitor"
)

// FailurePolicy selects how the executive reacts when a stage's functor
// panics. The paper's separation of concerns puts the functor on the
// application side of the runtime boundary, so the runtime cannot vouch for
// it; the policy decides how much of the application one bad iteration may
// take down. The policy is chosen per stage (StageSpec.OnFailure) with an
// executive-wide default (WithFailurePolicy).
type FailurePolicy int

const (
	// FailDefault defers to the executive-wide policy, which itself
	// defaults to FailStop.
	FailDefault FailurePolicy = iota
	// FailStop records the panic (with its stack) as the run error and
	// shuts the whole application down — the conservative choice and the
	// default: a panic may have corrupted state shared beyond the stage.
	FailStop
	// FailRestart restarts the failing worker slot after an exponential
	// backoff. A per-stage failure budget bounds it: more than
	// FailureBudget failures within a rolling FailureWindow escalates the
	// stage to FailStop.
	FailRestart
	// FailDegrade retires the failing slot, shrinking the stage's extent
	// by one (floor 1) in both the worker group and the active
	// configuration, so mechanisms observe the shrink and may re-grow the
	// stage later. The failure of a stage's last active slot escalates to
	// FailStop: a pipeline stage cannot degrade to zero workers without
	// wedging its neighbours.
	FailDegrade
)

// String returns the conventional name of the policy.
func (p FailurePolicy) String() string {
	switch p {
	case FailDefault:
		return "default"
	case FailStop:
		return "fail-stop"
	case FailRestart:
		return "fail-restart"
	case FailDegrade:
		return "fail-degrade"
	default:
		return "invalid"
	}
}

// valid reports whether p is one of the declared policies.
func (p FailurePolicy) valid() bool {
	return p >= FailDefault && p <= FailDegrade
}

// Executive-wide failure-handling defaults; all overridable per option and,
// for budget and window, per stage.
const (
	// DefaultFailureBudget is the number of failures tolerated within the
	// failure window before FailRestart escalates to FailStop.
	DefaultFailureBudget = 8
	// DefaultFailureWindow is the rolling window the budget applies to.
	DefaultFailureWindow = time.Second
	// defaultRestartBackoff is the base delay before a FailRestart respawn;
	// it doubles per failure in the window, up to defaultRestartBackoffMax.
	defaultRestartBackoff    = time.Millisecond
	defaultRestartBackoffMax = 100 * time.Millisecond
)

// WithFailurePolicy sets the executive-wide failure policy applied to every
// stage whose spec leaves OnFailure as FailDefault. Passing FailDefault (or
// an out-of-range value) keeps FailStop.
func WithFailurePolicy(p FailurePolicy) Option {
	return func(e *Exec) {
		if p.valid() && p != FailDefault {
			e.failPolicy = p
		}
	}
}

// WithFailureBudget sets the executive-wide restart budget: more than n
// failures of one stage within window escalate that stage to FailStop.
// Stages may override both via StageSpec.FailureBudget/FailureWindow.
func WithFailureBudget(n int, window time.Duration) Option {
	return func(e *Exec) {
		if n > 0 {
			e.failBudget = n
		}
		if window > 0 {
			e.failWindow = window
		}
	}
}

// WithRestartBackoff sets the FailRestart backoff: the first restart of a
// stage waits base, doubling per failure in the window up to max.
func WithRestartBackoff(base, max time.Duration) Option {
	return func(e *Exec) {
		if base > 0 {
			e.restartBase = base
		}
		if max > 0 {
			e.restartMax = max
		}
	}
}

// TaskFailures returns how many functor panics the executive has absorbed
// (under any policy, escalations included).
func (e *Exec) TaskFailures() uint64 { return e.taskFailures.Load() }

// taskError renders a functor panic as the error that becomes the run error
// under FailStop; the recovery-site stack makes the panic site attributable
// from logs.
func taskError(key monitor.Key, p any, stack []byte) error {
	return fmt.Errorf("core: task %s/%s panicked: %v\n%s", key.Nest, key.Stage, p, stack)
}

// recordTaskFailure makes err the run error (first failure wins) and shuts
// the application down; sibling tasks drain through the normal protocol.
func (e *Exec) recordTaskFailure(err error) {
	e.errMu.Lock()
	if e.runErr == nil {
		e.runErr = err
	}
	e.errMu.Unlock()
	e.emit(Event{Kind: EventError, Err: err})
	e.flushTrace() // a fatal error must not sit in the batch buffer
	e.Stop()
}

// restartBackoff returns the delay before the n-th failure in the window is
// restarted: base·2^(n-1), capped at max.
func (e *Exec) restartBackoff(n int) time.Duration {
	d := e.restartBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= e.restartMax {
			return e.restartMax
		}
	}
	if d > e.restartMax {
		d = e.restartMax
	}
	return d
}

//go:build !amd64

package core

// cputicks has no implementation on this architecture; returning 0 makes
// calibration decline the TSC path and the hot-path clock falls back to the
// runtime's monotonic reader.
func cputicks() int64 { return 0 }

package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/queue"
)

// spinFor burns CPU for roughly d without sleeping, so Begin/End sections
// hold their context like real work.
func spinFor(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// doallSpec is a root nest with one PAR stage consuming n work items from a
// fresh queue per instantiation... the queue is external so respawns resume.
func doallSpec(work *queue.Queue[int], processed *atomic.Int64) *NestSpec {
	return &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "doall",
		Stages: []StageSpec{{Name: "worker", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if w.Suspending() {
						return Suspended
					}
					v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					// The item is already claimed: even if Begin reports
					// Suspended, process it so no work is lost.
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					_ = v
					processed.Add(1)
					w.End()
					return Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func fillAndClose(q *queue.Queue[int], n int) {
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	q.Close()
}

func TestDOALLRunsToCompletion(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	cfg := &Config{Alt: 0, Extents: []int{4}}
	e, err := New(spec, WithContexts(8), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 100 {
		t.Fatalf("processed = %d", processed.Load())
	}
}

func TestStartTwiceFails(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	e, err := New(doallSpec(work, &processed))
	if err != nil {
		t.Fatal(err)
	}
	work.Close()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
	e.Wait()
}

func TestInvalidSpecRejected(t *testing.T) {
	if _, err := New(&NestSpec{Name: ""}); err == nil { //dopevet:ignore nestspec deliberately invalid spec under test
		t.Fatal("invalid spec accepted")
	}
}

func TestPipelineDrainsThroughFini(t *testing.T) {
	// read -> q1 -> transform -> q2 -> write, with Fini propagating closure
	// downstream exactly like the paper's sentinel NULL tokens.
	const items = 50
	var wrote atomic.Int64
	spec := &NestSpec{Name: "pipe", Alts: []*AltSpec{{
		Name: "pipeline",
		Stages: []StageSpec{
			{Name: "read", Type: SEQ},
			{Name: "transform", Type: PAR},
			{Name: "write", Type: SEQ},
		},
		Make: func(item any) (*AltInstance, error) {
			q1 := queue.New[int](8)
			q2 := queue.New[int](8)
			next := 0
			return &AltInstance{Stages: []StageFns{
				{
					Fn: func(w *Worker) Status {
						if next >= items {
							return Finished
						}
						w.Begin() //dopevet:ignore suspendcheck finite test head: exits via its own counter
						v := next
						next++
						w.End()
						q1.Enqueue(v)
						return Executing
					},
					Fini: q1.Close,
				},
				{
					Fn: func(w *Worker) Status {
						v, err := q1.Dequeue()
						if err != nil {
							return Finished
						}
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						v *= 2
						w.End()
						q2.Enqueue(v)
						return Executing
					},
					Load: func() float64 { return float64(q1.Len()) },
					Fini: q2.Close,
				},
				{
					Fn: func(w *Worker) Status {
						_, err := q2.Dequeue()
						if err != nil {
							return Finished
						}
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						wrote.Add(1)
						w.End()
						return Executing
					},
					Load: func() float64 { return float64(q2.Len()) },
				},
			}}, nil
		},
	}}}
	cfg := &Config{Alt: 0, Extents: []int{1, 3, 1}}
	e, err := New(spec, WithContexts(8), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wrote.Load() != items {
		t.Fatalf("wrote = %d, want %d", wrote.Load(), items)
	}
}

// nestedSpec: outer workers pull items and run a private inner pipeline per
// item (the transcode structure).
func nestedSpec(work *queue.Queue[int], innerDone *atomic.Int64) *NestSpec {
	inner := &NestSpec{Name: "video", Alts: []*AltSpec{
		{
			Name: "pipeline",
			Stages: []StageSpec{
				{Name: "produce", Type: SEQ},
				{Name: "consume", Type: PAR},
			},
			Make: func(item any) (*AltInstance, error) {
				frames := queue.New[int](4)
				n := 0
				return &AltInstance{Stages: []StageFns{
					{
						Fn: func(w *Worker) Status {
							if n >= 5 {
								return Finished
							}
							w.Begin() //dopevet:ignore suspendcheck finite test head: exits via its own counter
							n++
							w.End()
							frames.Enqueue(n)
							return Executing
						},
						Fini: frames.Close,
					},
					{
						Fn: func(w *Worker) Status {
							_, err := frames.Dequeue()
							if err != nil {
								return Finished
							}
							w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
							innerDone.Add(1)
							w.End()
							return Executing
						},
					},
				}}, nil
			},
		},
		{
			Name:   "fused",
			Stages: []StageSpec{{Name: "all", Type: SEQ}},
			Make: func(item any) (*AltInstance, error) {
				n := 0
				return &AltInstance{Stages: []StageFns{{
					Fn: func(w *Worker) Status {
						if n >= 5 {
							return Finished
						}
						w.Begin() //dopevet:ignore suspendcheck finite test loop: exits via its own counter
						n++
						innerDone.Add(1)
						w.End()
						return Executing
					},
				}}}, nil
			},
		},
	}}
	return &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "outer",
		Stages: []StageSpec{{Name: "transcode", Type: PAR, Nest: inner}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					st, err := w.RunNest(inner, v)
					if err != nil {
						return Finished
					}
					if st == Suspended {
						return Suspended
					}
					return Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func TestNestedLoopsRun(t *testing.T) {
	work := queue.New[int](0)
	var innerDone atomic.Int64
	spec := nestedSpec(work, &innerDone)
	cfg := &Config{Alt: 0, Extents: []int{3}}
	inner := &Config{Alt: 0, Extents: []int{1, 2}}
	cfg.SetChild("video", inner)
	e, err := New(spec, WithContexts(12), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if innerDone.Load() != 20*5 {
		t.Fatalf("inner iterations = %d, want 100", innerDone.Load())
	}
}

func TestNestedAltSwitchWithoutSuspension(t *testing.T) {
	// Switching the INNER alternative must not suspend the outer run: the
	// next instantiation simply picks the new alternative.
	work := queue.New[int](0)
	var innerDone atomic.Int64
	spec := nestedSpec(work, &innerDone)
	cfg := &Config{Alt: 0, Extents: []int{2}}
	cfg.SetChild("video", &Config{Alt: 0, Extents: []int{1, 1}})
	e, err := New(spec, WithContexts(8), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Flip inner to fused mid-run.
	nc := e.CurrentConfig()
	nc.Child("video").Alt = 1
	nc.Child("video").Extents = []int{1}
	e.SetConfig(nc)
	if got := e.Suspensions(); got != 0 {
		t.Fatalf("inner-only change caused %d suspensions", got)
	}
	for i := 10; i < 20; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if innerDone.Load() != 100 {
		t.Fatalf("inner iterations = %d", innerDone.Load())
	}
}

// twoAltDoallSpec is doallSpec with a second, behaviorally identical
// alternative, so tests can trigger the one root-level change that still
// requires the full suspension protocol: an alternative switch.
func twoAltDoallSpec(work *queue.Queue[int], processed *atomic.Int64) *NestSpec {
	mk := func(item any) (*AltInstance, error) {
		return &AltInstance{Stages: []StageFns{{
			Fn: func(w *Worker) Status {
				if w.Suspending() {
					return Suspended
				}
				v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
				if errors.Is(err, queue.ErrClosed) {
					return Finished
				}
				if !ok {
					return Suspended
				}
				w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
				_ = v
				processed.Add(1)
				w.End()
				return Executing
			},
			Load: func() float64 { return float64(work.Len()) },
		}}}, nil
	}
	return &NestSpec{Name: "app", Alts: []*AltSpec{
		{Name: "doall-a", Stages: []StageSpec{{Name: "worker", Type: PAR}}, Make: mk},
		{Name: "doall-b", Stages: []StageSpec{{Name: "worker", Type: PAR}}, Make: mk},
	}}
}

func TestRootAltSwitchSuspendsAndResumes(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := twoAltDoallSpec(work, &processed)
	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}))
	if err != nil {
		t.Fatal(err)
	}
	var events []EventKind
	var evMu sync.Mutex
	e.trace = func(ev Event) {
		evMu.Lock()
		events = append(events, ev.Kind)
		evMu.Unlock()
	}
	for i := 0; i < 50; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Switch the root alternative: the stage set changes, so the full
	// suspend→drain→respawn protocol applies.
	e.SetConfig(&Config{Alt: 1, Extents: []int{6}})
	deadline := time.Now().Add(2 * time.Second)
	for e.Suspensions() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Suspensions() == 0 {
		t.Fatal("root alternative switch did not suspend")
	}
	for i := 50; i < 100; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 100 {
		t.Fatalf("processed = %d, want 100 (no lost or duplicated work)", processed.Load())
	}
	evMu.Lock()
	defer evMu.Unlock()
	var sawReconf, sawSuspend, sawResume, sawFinish bool
	for _, k := range events {
		switch k {
		case EventReconfigure:
			sawReconf = true
		case EventSuspend:
			sawSuspend = true
		case EventResume:
			sawResume = true
		case EventFinish:
			sawFinish = true
		}
	}
	if !sawReconf || !sawSuspend || !sawResume || !sawFinish {
		t.Fatalf("event sequence incomplete: %v", events)
	}
	if got := e.CurrentConfig(); got.Alt != 1 || got.Extents[0] != 6 {
		t.Fatalf("final config = %+v", got)
	}
}

// bumpMechanism grows the root extent by one on every tick up to a target.
type bumpMechanism struct {
	target int
}

func (m *bumpMechanism) Name() string { return "bump" }

func (m *bumpMechanism) Reconfigure(r *Report) *Config {
	cfg := r.Config
	if cfg.Extents[0] < m.target {
		cfg.Extents[0]++
		return cfg
	}
	return nil
}

func TestMechanismDrivesReconfiguration(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	e, err := New(spec, WithContexts(8),
		WithMechanism(&bumpMechanism{target: 4}),
		WithControlInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for e.CurrentConfig().Extents[0] < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.CurrentConfig().Extents[0]; got != 4 {
		t.Fatalf("mechanism never reached target extent: %d", got)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 30 {
		t.Fatalf("processed = %d", processed.Load())
	}
	if e.Reconfigurations() < 3 {
		t.Fatalf("reconfigurations = %d", e.Reconfigurations())
	}
}

func TestMakeErrorPropagates(t *testing.T) {
	spec := &NestSpec{Name: "bad", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return nil, errors.New("boom")
		},
	}}}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestStageCountMismatchFails(t *testing.T) {
	spec := &NestSpec{Name: "bad", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s1", Type: SEQ}, {Name: "s2", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{Fn: func(w *Worker) Status { return Finished }}}}, nil
		},
	}}}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "built 1 stages") {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingFunctorFails(t *testing.T) {
	spec := &NestSpec{Name: "bad", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{}}}, nil //dopevet:ignore nestspec deliberately invalid instance under test
		},
	}}}
	e, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "no functor") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbalancedBeginIsAutoClosed(t *testing.T) {
	n := 0
	spec := &NestSpec{Name: "leak", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if n >= 10 {
						return Finished
					}
					n++
					w.Begin() //dopevet:ignore beginend,suspendcheck deliberately leaked window: exercises the balancer auto-close
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("context leaked: run never finished")
	}
	if e.Contexts().Busy() != 0 {
		t.Fatalf("busy contexts after run = %d", e.Contexts().Busy())
	}
}

func TestStopTerminates(t *testing.T) {
	work := queue.New[int](0) // never closed, never fed: workers block
	var processed atomic.Int64
	e, err := New(doallSpec(work, &processed), WithContexts(4),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	e.Stop()
	done := make(chan error, 1)
	go func() { done <- e.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not terminate the run")
	}
}

func TestReportStructure(t *testing.T) {
	work := queue.New[int](0)
	var innerDone atomic.Int64
	spec := nestedSpec(work, &innerDone)
	cfg := &Config{Alt: 0, Extents: []int{2}}
	cfg.SetChild("video", &Config{Alt: 0, Extents: []int{1, 3}})
	e, err := New(spec, WithContexts(8), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rep := e.Report()
	if rep.Root == nil || rep.Root.Path != "app" {
		t.Fatalf("root path = %v", rep.Root)
	}
	if rep.Contexts != 8 {
		t.Fatalf("contexts = %d", rep.Contexts)
	}
	child := rep.Nest("app/video")
	if child == nil {
		t.Fatal("missing nested report")
	}
	if child.AltName != "pipeline" || len(child.Stages) != 2 {
		t.Fatalf("child report = %+v", child)
	}
	consume := child.Stage("consume")
	if consume == nil || consume.Iterations == 0 {
		t.Fatalf("consume stage unmonitored: %+v", consume)
	}
	if consume.Extent != 3 {
		t.Fatalf("consume extent = %d", consume.Extent)
	}
	tc := rep.Nest("app").Stage("transcode")
	if tc == nil || !tc.HasNest {
		t.Fatal("transcode stage should declare a nest")
	}
	if rep.Nest("app/zzz") != nil || rep.Nest("zzz") != nil {
		t.Fatal("bogus paths should return nil")
	}
	if rep.Nest("app").Stage("zzz") != nil {
		t.Fatal("bogus stage should return nil")
	}
}

func TestExecTimeIsMonitored(t *testing.T) {
	work := queue.New[int](0)
	spec := &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "spin", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					_, _, err := work.TryDequeue()
					if err != nil {
						return Finished
					}
					w.Begin() //dopevet:ignore suspendcheck test functor drains a pre-filled queue; exit via queue empty
					spinFor(2 * time.Millisecond)
					w.End()
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(2))
	if err != nil {
		t.Fatal(err)
	}
	fillAndClose(work, 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Report().Nest("app").Stage("spin")
	if st.ExecTime < 0.0015 || st.ExecTime > 0.05 {
		t.Fatalf("exec time = %v, want ~0.002", st.ExecTime)
	}
	if st.Iterations != 10 {
		t.Fatalf("iterations = %d", st.Iterations)
	}
}

func TestFeaturesRegisteredByDefault(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	e, err := New(doallSpec(work, &processed), WithContexts(6))
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Features().Value("HardwareContexts")
	if err != nil || v != 6 {
		t.Fatalf("HardwareContexts = %v, %v", v, err)
	}
	if _, err := e.Features().Value("BusyContexts"); err != nil {
		t.Fatal(err)
	}
	work.Close()
	e.Run()
}

func TestSetConfigNilAndEqualNoOp(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	e, err := New(doallSpec(work, &processed))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Reconfigurations()
	e.SetConfig(nil)
	e.SetConfig(e.CurrentConfig())
	if e.Reconfigurations() != before {
		t.Fatal("no-op SetConfig counted as reconfiguration")
	}
	work.Close()
	e.Run()
}

func TestWorkerPanicFailsRunGracefully(t *testing.T) {
	work := queue.New[int](0)
	n := 0
	spec := &NestSpec{Name: "panicky", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if w.Suspending() {
						return Suspended
					}
					_, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					n++
					if n == 3 {
						panic("kaboom")
					}
					w.End()
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		work.Enqueue(i)
	}
	work.Close()
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
	if e.Contexts().Busy() != 0 {
		t.Fatalf("context leaked after panic: busy = %d", e.Contexts().Busy())
	}
}

func TestWorkerPanicEmitsErrorEvent(t *testing.T) {
	var sawError atomic.Bool
	spec := &NestSpec{Name: "panicky", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status { panic("boom") },
			}}}, nil
		},
	}}}
	e, err := New(spec, WithTrace(func(ev Event) {
		if ev.Kind == EventError {
			sawError.Store(true)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("expected error")
	}
	if !sawError.Load() {
		t.Fatal("no EventError emitted")
	}
}

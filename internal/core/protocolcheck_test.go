package core

import (
	"strings"
	"testing"

	"dope/internal/monitor"
)

// misuseSpec is a one-stage nest whose functor is the (possibly deliberately
// broken) fn under test.
func misuseSpec(fn Functor) *NestSpec {
	return &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "only",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{Fn: fn}}}, nil
		},
	}}}
}

// runWithDetector runs fn under an armed detector and returns the run error.
func runWithDetector(t *testing.T, fn Functor) error {
	t.Helper()
	e, err := New(misuseSpec(fn), WithContexts(4), WithProtocolCheck())
	if err != nil {
		t.Fatal(err)
	}
	return e.Run()
}

func wantViolation(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("run succeeded, want protocol-violation error containing %q", frag)
	}
	if !strings.Contains(err.Error(), "protocol violation") || !strings.Contains(err.Error(), frag) {
		t.Fatalf("error = %q, want protocol violation containing %q", err, frag)
	}
}

func TestDetectorDoubleBegin(t *testing.T) {
	err := runWithDetector(t, func(w *Worker) Status {
		w.Begin() //dopevet:ignore suspendcheck deliberate misuse under test
		w.Begin() //dopevet:ignore beginend deliberate misuse: detector must catch the double Begin
		w.End()
		return Finished //dopevet:ignore beginend unreachable: the second Begin panics
	})
	wantViolation(t, err, "double Begin")
}

func TestDetectorEndWithoutBegin(t *testing.T) {
	err := runWithDetector(t, func(w *Worker) Status {
		w.End() //dopevet:ignore beginend,suspendcheck deliberate misuse: detector must catch the unmatched End
		return Finished
	})
	wantViolation(t, err, "without a matching Worker.Begin")
}

func TestDetectorRunNestWhileHolding(t *testing.T) {
	child := &NestSpec{Name: "inner", Alts: []*AltSpec{{
		Name:   "only",
		Stages: []StageSpec{{Name: "s", Type: SEQ}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status { return Finished },
			}}}, nil
		},
	}}}
	err := runWithDetector(t, func(w *Worker) Status {
		w.Begin()                      //dopevet:ignore suspendcheck deliberate misuse under test
		st, _ := w.RunNest(child, nil) //dopevet:ignore tokenhold deliberate misuse: detector must catch RunNest in the window
		_ = st
		w.End()
		return Finished
	})
	wantViolation(t, err, "RunNest while holding")
}

// TestDetectorCleanRun: a protocol-correct functor runs to completion with
// the detector armed.
func TestDetectorCleanRun(t *testing.T) {
	iters := 0
	err := runWithDetector(t, func(w *Worker) Status {
		if w.Begin() == Suspended {
			return Suspended
		}
		iters++
		if w.End() == Suspended {
			return Suspended
		}
		if iters < 10 {
			return Executing
		}
		return Finished
	})
	if err != nil {
		t.Fatalf("clean run failed under detector: %v", err)
	}
	if iters != 10 {
		t.Fatalf("iters = %d, want 10", iters)
	}
}

// TestDetectorInertWhenDisabled: the same misuse runs to completion without
// the option — the runtime stays tolerant unless the detector is armed.
func TestDetectorInertWhenDisabled(t *testing.T) {
	e, err := New(misuseSpec(func(w *Worker) Status {
		w.End() //dopevet:ignore beginend,suspendcheck deliberate misuse: inert without the detector
		return Finished
	}), WithContexts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("undetected misuse must stay tolerated, got %v", err)
	}
}

// TestDetectorEnvVar: DOPE_DEBUG=1 arms the detector without the option.
func TestDetectorEnvVar(t *testing.T) {
	t.Setenv("DOPE_DEBUG", "1")
	e, err := New(misuseSpec(func(w *Worker) Status {
		w.End() //dopevet:ignore beginend,suspendcheck deliberate misuse under test
		return Finished
	}), WithContexts(4))
	if err != nil {
		t.Fatal(err)
	}
	wantViolation(t, e.Run(), "without a matching Worker.Begin")
}

// directWorker builds a bare Worker on e for sequence-level tests: not part
// of any run, so Suspending is always false.
func directWorker(e *Exec) *Worker {
	return &Worker{exec: e, stats: e.mon.Stage(monitor.Key{Nest: "n", Stage: "s"})}
}

// TestDetectorAllowsDrainSequence: Begin → work → End with no status
// consulted is the drain shape; the detector must accept it repeatedly, and
// must accept the head shape (Begin, End) in steady alternation.
func TestDetectorAllowsDrainSequence(t *testing.T) {
	e, err := New(misuseSpec(func(w *Worker) Status { return Finished }),
		WithContexts(2), WithProtocolCheck())
	if err != nil {
		t.Fatal(err)
	}
	w := directWorker(e)
	for i := 0; i < 3; i++ {
		w.Begin() //dopevet:ignore suspendcheck drain sequence under test
		w.End()
	}
}

func TestDetectorUnbalancedEndPanics(t *testing.T) {
	e, err := New(misuseSpec(func(w *Worker) Status { return Finished }),
		WithContexts(2), WithProtocolCheck())
	if err != nil {
		t.Fatal(err)
	}
	w := directWorker(e)
	w.Begin() //dopevet:ignore suspendcheck sequence under test
	w.End()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("second End did not panic under the detector")
		}
		if !strings.Contains(p.(string), "protocol violation") {
			t.Fatalf("panic = %v, want protocol violation", p)
		}
	}()
	w.End() //dopevet:ignore beginend deliberate second End
}

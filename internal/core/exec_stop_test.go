package core

import (
	"runtime"
	"testing"
	"time"
)

// serverSpec is a two-alternative nest whose stages never finish on their
// own: they iterate until suspended or stopped, like a server workload.
func serverSpec() *NestSpec {
	mk := func() (*AltInstance, error) {
		return &AltInstance{Stages: []StageFns{{
			Fn: func(w *Worker) Status {
				if w.Suspending() {
					return Suspended
				}
				runtime.Gosched()
				return Executing
			},
		}}}, nil
	}
	return &NestSpec{Name: "app", Alts: []*AltSpec{
		{
			Name:   "a",
			Stages: []StageSpec{{Name: "worker", Type: PAR}},
			Make:   func(item any) (*AltInstance, error) { return mk() },
		},
		{
			Name:   "b",
			Stages: []StageSpec{{Name: "worker", Type: PAR}},
			Make:   func(item any) (*AltInstance, error) { return mk() },
		},
	}}
}

// TestStopRacingRespawnTerminates is the regression test for the
// Stop/respawn race in serve(): a Stop landing after the drained run's
// suspension but before serve stored the fresh run used to suspend only the
// old run — the fresh one never observed it and Wait blocked forever. The
// window is a few instructions wide, so each round forces a suspension with
// an alternative switch, waits for the suspend flag to land, and then sweeps
// Stop across the respawn in ~25ns steps. With the re-check after the
// store, every round must terminate.
func TestStopRacingRespawnTerminates(t *testing.T) {
	start := time.Now()
	for i := 0; i < 5000 && time.Since(start) < 3*time.Second; i++ {
		e, err := New(serverSpec(), WithContexts(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		// Force a suspend→respawn cycle.
		go e.SetConfig(&Config{Alt: 1, Extents: []int{1}})
		for e.Suspensions() == 0 {
			runtime.Gosched()
		}
		// The drain is completing; sweep Stop across the respawn window.
		for n := 0; n < i%512; n++ {
			_ = time.Now()
		}
		e.Stop()
		done := make(chan error, 1)
		go func() { done <- e.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: Wait returned %v", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: Wait hung — Stop lost against the respawn", i)
		}
	}
}

// TestResizeDuringDrainAdoptedAtRespawn covers the other reconfiguration
// window: an extent-only SetConfig arriving while the run is suspending
// finds no groups to resize (run.resize returns early), so the change must
// be adopted when the respawned run re-resolves its extents in runNest.
func TestResizeDuringDrainAdoptedAtRespawn(t *testing.T) {
	gate := make(chan struct{})
	spec := &NestSpec{Name: "app", Alts: []*AltSpec{
		{
			// Alternative "a" holds the drain open: its worker blocks on the
			// gate before acknowledging suspension, pinning the run in the
			// suspending state for as long as the test needs.
			Name:   "a",
			Stages: []StageSpec{{Name: "worker", Type: PAR}},
			Make: func(item any) (*AltInstance, error) {
				return &AltInstance{Stages: []StageFns{{
					Fn: func(w *Worker) Status {
						<-gate
						return Suspended
					},
				}}}, nil
			},
		},
		{
			Name:   "b",
			Stages: []StageSpec{{Name: "worker", Type: PAR}},
			Make: func(item any) (*AltInstance, error) {
				return &AltInstance{Stages: []StageFns{{
					Fn: func(w *Worker) Status {
						if w.Suspending() {
							return Suspended
						}
						time.Sleep(20 * time.Microsecond)
						return Executing
					},
				}}}, nil
			},
		},
	}}
	e, err := New(spec, WithContexts(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	waitForWorkers(t, e, "worker", 1)

	// Switch alternatives: the run starts suspending but cannot finish
	// draining until the gate opens.
	e.SetConfig(&Config{Alt: 1, Extents: []int{1}})
	// Now grow the new alternative's stage while the old run is still
	// draining. There are no resizable groups yet, so this must not count
	// as an in-place resize — only update the stored configuration.
	e.SetConfig(&Config{Alt: 1, Extents: []int{4}})
	if got := e.Resizes(); got != 0 {
		t.Fatalf("resize applied to a draining run: resizes = %d", got)
	}

	close(gate) // let the drain complete; serve respawns under alt 1
	waitForWorkers(t, e, "worker", 4)
	if got := e.CurrentConfig(); got.Alt != 1 || got.Extents[0] != 4 {
		t.Fatalf("respawned config = %+v, want alt 1 extent 4", got)
	}
	if got := e.Resizes(); got != 0 {
		t.Fatalf("extent change during drain should be adopted at respawn, not resized: resizes = %d", got)
	}
	if got := e.Suspensions(); got != 1 {
		t.Fatalf("suspensions = %d, want 1", got)
	}
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
}

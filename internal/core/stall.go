package core

import (
	"fmt"
	"runtime"
	"time"

	"dope/internal/monitor"
)

// This file is the executive's stall-tolerance layer. The reconfiguration
// protocol (exec.go) is only safe against tasks that return: runNest blocks
// until every stage's worker group has drained, so one functor stuck in an
// infinite loop or blocked on I/O would hang every reconfiguration, Stop,
// and Wait forever. Two watchdogs close that hole:
//
//   - the invocation watchdog arms a per-invocation deadline on the
//     Begin..End CPU section of deadlined stages (StageSpec.Deadline or the
//     executive-wide WithDeadline) and treats an overrun as a stall,
//   - the drain watchdog bounds how long a suspension may take to drain
//     (WithDrainTimeout) and, on expiry, treats every still-live slot as
//     stalled.
//
// A stall is handled by the stage's FailurePolicy, like a panic: FailStop
// surfaces a run error carrying the stage key and a full goroutine dump (so
// the stuck frame is attributable), FailRestart abandons the slot and
// spawns a fresh one, FailDegrade abandons it and shrinks the extent. An
// abandoned slot's goroutine cannot be killed in Go; it leaks by design
// until (if ever) it unblocks, but it is fenced off: its platform context
// is reclaimed, its late End neither releases a second token nor perturbs
// the monitors, and its late Begin refuses work. Cooperative functors watch
// Worker.Done() and unblock promptly instead.

// WithDeadline sets the executive-wide default invocation deadline applied
// to every stage whose spec leaves Deadline zero. Zero or negative leaves
// stages without a deadline.
func WithDeadline(d time.Duration) Option {
	return func(e *Exec) {
		if d > 0 {
			e.deadline = d
		}
	}
}

// WithDrainTimeout bounds how long a suspension (reconfiguration or Stop)
// may wait for the running tasks to drain. On expiry the watchdog treats
// every still-live worker slot as stalled and escalates per the stage's
// failure policy, so Wait returns instead of hanging on a stuck task. Zero
// (the default) waits forever, the paper's original semantics.
func WithDrainTimeout(d time.Duration) Option {
	return func(e *Exec) {
		if d > 0 {
			e.drainTimeout = d
		}
	}
}

// WithStallCheckInterval overrides the watchdog's patrol interval. By
// default it is derived from the configured deadlines (a quarter of the
// shortest, clamped to [100µs, 25ms]), which bounds detection latency to
// ~1.25× the deadline.
func WithStallCheckInterval(d time.Duration) Option {
	return func(e *Exec) {
		if d > 0 {
			e.stallCheck = d
		}
	}
}

// TaskStalls returns how many stalled invocations the watchdog has
// abandoned (under any policy, drain-time stalls included).
func (e *Exec) TaskStalls() uint64 { return e.taskStalls.Load() }

// Err returns the run error recorded so far without waiting for the
// application to end (Wait's non-blocking sibling; health endpoints poll
// it). It is nil until a task fails or stalls under FailStop.
func (e *Exec) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.runErr
}

// TaskContext is the cooperative cancellation handle of one worker slot,
// obtained from Worker.Context. Functors that loop or block inside their
// CPU section should select on Done so a deadline overrun (or a drain
// timeout) can stop them instead of leaking their goroutine.
type TaskContext struct {
	done <-chan struct{}
}

// Done returns a channel closed when the executive no longer wants the
// slot's work: the slot was retired by a shrink, abandoned by the stall
// watchdog, or its run began suspending for a reconfiguration or Stop.
func (c *TaskContext) Done() <-chan struct{} { return c.done }

// stallError renders a stalled invocation as the error that becomes the
// run error under FailStop. stack is a full goroutine dump
// (runtime.Stack(all)): the stalled goroutine cannot capture its own stack
// — it is stuck — so the watchdog captures everyone's and leaves
// attribution to the reader.
func stallError(key monitor.Key, age, deadline time.Duration, stack []byte) error {
	return fmt.Errorf("core: task %s/%s stalled: invocation ran %v, deadline %v\n%s",
		key.Nest, key.Stage, age, deadline, stack)
}

// allStacks captures every goroutine's stack.
func allStacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, len(buf)*2)
	}
}

// watch registers a started worker group with the watchdog.
func (e *Exec) watch(g *workerGroup) {
	e.watchMu.Lock()
	e.watched[g] = struct{}{}
	e.watchMu.Unlock()
}

// unwatch removes a closed group from the watchdog's patrol set.
func (e *Exec) unwatch(g *workerGroup) {
	e.watchMu.Lock()
	delete(e.watched, g)
	e.watchMu.Unlock()
}

// stallInterval picks the watchdog patrol period: a quarter of the
// shortest configured deadline or drain timeout, clamped to [100µs, 25ms];
// 5ms when nothing is configured (the watchdog still patrols to publish
// shed events).
func (e *Exec) stallInterval() time.Duration {
	if e.stallCheck > 0 {
		return e.stallCheck
	}
	shortest := time.Duration(0)
	consider := func(d time.Duration) {
		if d > 0 && (shortest == 0 || d < shortest) {
			shortest = d
		}
	}
	consider(e.deadline)
	consider(e.drainTimeout)
	var walk func(n *NestSpec)
	walk = func(n *NestSpec) {
		for _, alt := range n.Alts {
			for i := range alt.Stages {
				consider(alt.Stages[i].Deadline)
				if alt.Stages[i].Nest != nil {
					walk(alt.Stages[i].Nest)
				}
			}
		}
	}
	walk(e.root)
	if shortest == 0 {
		return 5 * time.Millisecond
	}
	d := shortest / 4
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	if d > 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	return d
}

// watchdog is the stall-detection goroutine, started with the executive and
// driven by its clock (a VirtualClock drives it deterministically). It
// exits when serve does (ctrlCh closes, shared with the control loop).
func (e *Exec) watchdog() {
	defer e.loopsWG.Done()
	ticker := e.clock.NewTicker(e.stallInterval())
	defer ticker.Stop()
	for {
		select {
		case <-e.ctrlCh:
			return
		case <-ticker.C():
		}
		e.patrol()
		// Stall, shed, and failure events must not wait for the (slower)
		// control tick: a patrol that found trouble publishes it now.
		e.flushTrace()
	}
}

// patrol runs one watchdog sweep: deadline overruns on every watched
// group, the drain timeout on the suspending run, and shed-counter deltas.
func (e *Exec) patrol() {
	now := e.clock.Now()
	var drainAge time.Duration
	r := e.curRun.Load()
	if r != nil && e.drainTimeout > 0 && r.suspending() {
		if at := r.suspendAt.Load(); at != 0 {
			if age := now.Sub(time.Unix(0, at)); age > e.drainTimeout {
				drainAge = age
			}
		}
	}
	e.watchMu.Lock()
	groups := make([]*workerGroup, 0, len(e.watched))
	for g := range e.watched {
		groups = append(groups, g)
	}
	e.watchMu.Unlock()
	for _, g := range groups {
		if drainAge > 0 && g.r == r {
			g.patrolDrain(drainAge)
		} else {
			g.patrolDeadline(now)
		}
	}
	e.emitShedEvents()
}

// emitShedEvents publishes per-stage shed-counter growth as EventShed. The
// queues themselves only count (they must not call into the executive from
// under their lock), so the watchdog polls the monitor's cumulative totals
// and emits deltas.
func (e *Exec) emitShedEvents() {
	if !e.hasTraceConsumer() {
		return
	}
	for _, key := range e.mon.Keys() {
		total := e.mon.Shed(key)
		e.watchMu.Lock()
		last := e.shedSeen[key]
		if total > last {
			e.shedSeen[key] = total
		}
		e.watchMu.Unlock()
		if total > last {
			e.emit(Event{
				Kind: EventShed,
				Nest: key.Nest, Stage: key.Stage,
				ShedItems: total - last, ShedTotal: total,
			})
		}
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"
)

// Config assigns a concrete parallelism configuration to a nest: which
// alternative runs, the DoP extent of each of its stages, and the
// configurations of nested loops (keyed by nested nest name). This is the
// value mechanisms compute and the executive applies — the paper's
// "parallelism configuration" <DoP_outer, DoP_inner>.
type Config struct {
	// Alt is the index of the chosen alternative.
	Alt int
	// Extents is the DoP extent per stage of the chosen alternative,
	// index-aligned with AltSpec.Stages.
	Extents []int
	// Children maps nested nest names to their configurations.
	Children map[string]*Config
}

// DefaultConfig returns the configuration the executive starts from when no
// mechanism has spoken: alternative 0 with extent 1 everywhere.
func DefaultConfig(spec *NestSpec) *Config {
	cfg := &Config{Alt: 0}
	alt := spec.Alts[0]
	cfg.Extents = make([]int, len(alt.Stages))
	for i, st := range alt.Stages {
		cfg.Extents[i] = st.clampExtent(1)
		if st.Nest != nil {
			if cfg.Children == nil {
				cfg.Children = make(map[string]*Config)
			}
			cfg.Children[st.Nest.Name] = DefaultConfig(st.Nest)
		}
	}
	return cfg
}

// Clone returns a deep copy.
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	out := &Config{Alt: c.Alt, Extents: append([]int(nil), c.Extents...)}
	if c.Children != nil {
		out.Children = make(map[string]*Config, len(c.Children))
		for k, v := range c.Children {
			out.Children[k] = v.Clone()
		}
	}
	return out
}

// Equal reports whether two configurations are identical.
func (c *Config) Equal(o *Config) bool {
	if c == nil || o == nil {
		return c == o
	}
	if c.Alt != o.Alt || len(c.Extents) != len(o.Extents) {
		return false
	}
	for i := range c.Extents {
		if c.Extents[i] != o.Extents[i] {
			return false
		}
	}
	if len(c.Children) != len(o.Children) {
		return false
	}
	for k, v := range c.Children {
		if !v.Equal(o.Children[k]) {
			return false
		}
	}
	return true
}

// Child returns the configuration for the named nested nest, or nil.
func (c *Config) Child(name string) *Config {
	if c == nil {
		return nil
	}
	return c.Children[name]
}

// SetChild installs cfg as the configuration for the named nested nest.
func (c *Config) SetChild(name string, cfg *Config) {
	if c.Children == nil {
		c.Children = make(map[string]*Config)
	}
	c.Children[name] = cfg
}

// Extent returns the extent of stage i, defaulting to 1 when out of range.
func (c *Config) Extent(i int) int {
	if c == nil || i < 0 || i >= len(c.Extents) {
		return 1
	}
	return c.Extents[i]
}

// Normalize reconciles the configuration with spec in place: clamps the
// alternative index, resizes and clamps extents per stage type and DoP
// bounds, and recursively normalizes (creating defaults where missing) the
// child configuration of every nested nest reachable under the chosen
// alternative. Unknown children are left untouched so a mechanism may keep
// state for currently unchosen alternatives.
func (c *Config) Normalize(spec *NestSpec) {
	if c.Alt < 0 {
		c.Alt = 0
	}
	if c.Alt >= len(spec.Alts) {
		c.Alt = len(spec.Alts) - 1
	}
	alt := spec.Alts[c.Alt]
	if len(c.Extents) != len(alt.Stages) {
		old := c.Extents
		c.Extents = make([]int, len(alt.Stages))
		copy(c.Extents, old)
	}
	for i, st := range alt.Stages {
		c.Extents[i] = st.clampExtent(c.Extents[i])
		if st.Nest != nil {
			child := c.Child(st.Nest.Name)
			if child == nil {
				child = DefaultConfig(st.Nest)
				c.SetChild(st.Nest.Name, child)
			}
			child.Normalize(st.Nest)
		}
	}
}

// Demand returns the peak number of hardware contexts the configuration can
// occupy when instantiated for spec: a leaf stage occupies its extent; a
// stage that delegates to a nested loop occupies extent × the nested
// demand, because each of its workers drives a private instance of the
// nested loop (and holds no context itself while waiting on it).
func Demand(spec *NestSpec, cfg *Config) int {
	if cfg == nil {
		cfg = DefaultConfig(spec)
	}
	alt := spec.Alt(cfg.Alt)
	total := 0
	for i, st := range alt.Stages {
		e := st.clampExtent(cfg.Extent(i))
		if st.Nest != nil {
			total += e * Demand(st.Nest, cfg.Child(st.Nest.Name))
		} else {
			total += e
		}
	}
	return total
}

// String renders the configuration compactly, e.g.
// "alt=pipeline extents=[1 6 1] {video: alt=fused extents=[1]}".
// It is spec-agnostic, so alternatives print by index.
func (c *Config) String() string {
	if c == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "alt=%d extents=%v", c.Alt, c.Extents)
	if len(c.Children) > 0 {
		names := make([]string, 0, len(c.Children))
		for k := range c.Children {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString(" {")
		for i, k := range names {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s: %s", k, c.Children[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

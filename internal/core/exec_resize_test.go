package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/platform"
	"dope/internal/queue"
)

// waitForWorkers polls the root stage's live worker gauge until it reaches
// want, and returns how long that took.
func waitForWorkers(t *testing.T, e *Exec, stage string, want int) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		if got := e.Report().Nest("app").Stage(stage).Workers; got == want {
			return time.Since(start)
		}
		if time.Now().After(deadline) {
			got := e.Report().Nest("app").Stage(stage).Workers
			t.Fatalf("stage %q workers = %d, want %d", stage, got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRootExtentChangeResizesInPlace is the acceptance test for in-place
// stage resizing: an extent-only SetConfig on a running pipeline must be
// realized by growing/shrinking the stage's worker group — counted by
// Reconfigurations and Resizes, visible as EventResize — without a single
// suspension, and without losing work.
func TestRootExtentChangeResizesInPlace(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	type resizeEv struct {
		stage    string
		from, to int
	}
	var evMu sync.Mutex
	var resizeEvents []resizeEv
	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}),
		WithTrace(func(ev Event) {
			if ev.Kind == EventResize {
				evMu.Lock()
				resizeEvents = append(resizeEvents, resizeEv{ev.Stage, ev.FromExtent, ev.ToExtent})
				evMu.Unlock()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	waitForWorkers(t, e, "worker", 2)

	// Grow 2 → 6: fresh slots spawn while the original two keep iterating.
	before := e.Reconfigurations()
	e.SetConfig(&Config{Alt: 0, Extents: []int{6}})
	if e.Reconfigurations() != before+1 {
		t.Fatalf("reconfigurations = %d, want %d", e.Reconfigurations(), before+1)
	}
	waitForWorkers(t, e, "worker", 6)

	// Shrink 6 → 3: the three highest slots retire at their next iteration
	// boundary; the rest keep flowing.
	e.SetConfig(&Config{Alt: 0, Extents: []int{3}})
	waitForWorkers(t, e, "worker", 3)

	if got := e.Suspensions(); got != 0 {
		t.Fatalf("extent-only changes caused %d suspensions", got)
	}
	if got := e.Resizes(); got != 2 {
		t.Fatalf("resizes = %d, want 2", got)
	}

	for i := 50; i < 100; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 100 {
		t.Fatalf("processed = %d, want 100 (no lost or duplicated work)", processed.Load())
	}

	evMu.Lock()
	defer evMu.Unlock()
	if len(resizeEvents) != 2 {
		t.Fatalf("resize events = %+v, want grow and shrink", resizeEvents)
	}
	if resizeEvents[0] != (resizeEv{"worker", 2, 6}) {
		t.Fatalf("grow event = %+v", resizeEvents[0])
	}
	if resizeEvents[1] != (resizeEv{"worker", 6, 3}) {
		t.Fatalf("shrink event = %+v", resizeEvents[1])
	}

	st := e.Report().Nest("app").Stage("worker")
	if st.Workers != 0 {
		t.Fatalf("workers after finish = %d", st.Workers)
	}
	if st.Retired != 3 {
		t.Fatalf("retired = %d, want 3 (the shrink from 6 to 3)", st.Retired)
	}
	if st.Spawned != 6 {
		t.Fatalf("spawned = %d, want 6 (2 initial + 4 grown)", st.Spawned)
	}
	if st.Resizes != 2 {
		t.Fatalf("stage resizes = %d, want 2", st.Resizes)
	}
}

// TestConcurrentConfigInstallsAreSerialized races SetConfig callers against
// each other and against a ticking mechanism; run under -race this covers
// the previously racy load/compare/store install path. Every install must
// be counted exactly once (trace events and the counter agree) and
// extent-only changes must never suspend.
func TestConcurrentConfigInstallsAreSerialized(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	var reconfEvents atomic.Uint64
	e, err := New(spec, WithContexts(8),
		WithMechanism(&bumpMechanism{target: 7}),
		WithControlInterval(time.Millisecond),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}),
		WithTrace(func(ev Event) {
			if ev.Kind == EventReconfigure {
				reconfEvents.Add(1)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const installers, installs = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < installers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < installs; i++ {
				e.SetConfig(&Config{Alt: 0, Extents: []int{(g+i)%7 + 1}})
			}
		}(g)
	}
	const items = 300
	for i := 0; i < items; i++ {
		work.Enqueue(i)
	}
	wg.Wait()
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != items {
		t.Fatalf("processed %d of %d under concurrent installs", processed.Load(), items)
	}
	if e.Suspensions() != 0 {
		t.Fatalf("extent-only installs caused %d suspensions", e.Suspensions())
	}
	if e.Reconfigurations() == 0 {
		t.Fatal("no install went through")
	}
	if got := reconfEvents.Load(); got != e.Reconfigurations() {
		t.Fatalf("reconfigure events = %d but counter = %d", got, e.Reconfigurations())
	}
	st := e.Report().Nest("app").Stage("worker")
	if st.Workers != 0 {
		t.Fatalf("workers after finish = %d", st.Workers)
	}
	if st.Spawned == 0 || st.Spawned < st.Retired {
		t.Fatalf("slot accounting inconsistent: spawned=%d retired=%d", st.Spawned, st.Retired)
	}
}

// TestVirtualClockDrivesControlLoop checks the control loop runs on the
// executive's clock, not wall time: with a VirtualClock, control ticks (and
// the mechanism's reconfigurations) happen exactly when the test advances
// the clock, and the resulting extent bumps are in-place resizes.
func TestVirtualClockDrivesControlLoop(t *testing.T) {
	clk := platform.NewVirtualClock(time.Unix(0, 0))
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	e, err := New(spec, WithContexts(8), WithClock(clk),
		WithMechanism(&bumpMechanism{target: 4}),
		WithControlInterval(10*time.Millisecond),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{1}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Without advances the virtual ticker never fires, so the mechanism
	// must stay silent no matter how much wall time passes.
	time.Sleep(50 * time.Millisecond)
	if got := e.Reconfigurations(); got != 0 {
		t.Fatalf("control loop ticked %d times without a clock advance", got)
	}
	// Each advance crosses one control deadline: extent 1 → 4 in 3 ticks.
	for tick := 0; tick < 3; tick++ {
		want := e.Reconfigurations() + 1
		clk.Advance(10 * time.Millisecond)
		deadline := time.Now().Add(2 * time.Second)
		for e.Reconfigurations() < want {
			if time.Now().After(deadline) {
				t.Fatalf("control tick %d never fired", tick+1)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if got := e.CurrentConfig().Extents[0]; got != 4 {
		t.Fatalf("extent = %d, want 4", got)
	}
	if e.Suspensions() != 0 {
		t.Fatalf("mechanism extent bumps caused %d suspensions", e.Suspensions())
	}
	if e.Resizes() != 3 {
		t.Fatalf("resizes = %d, want 3", e.Resizes())
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 20 {
		t.Fatalf("processed = %d", processed.Load())
	}
}

// TestWholeNestRespawnOptionForcesSuspension pins the legacy behavior kept
// as the A/B baseline: with WithWholeNestRespawn, an extent-only change
// suspends and respawns the whole nest instead of resizing in place.
func TestWholeNestRespawnOptionForcesSuspension(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := doallSpec(work, &processed)
	e, err := New(spec, WithContexts(8), WithWholeNestRespawn(),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.SetConfig(&Config{Alt: 0, Extents: []int{6}})
	deadline := time.Now().Add(2 * time.Second)
	for e.Suspensions() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Suspensions() == 0 {
		t.Fatal("legacy mode did not suspend on an extent change")
	}
	if e.Resizes() != 0 {
		t.Fatalf("legacy mode performed %d in-place resizes", e.Resizes())
	}
	for i := 50; i < 100; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 100 {
		t.Fatalf("processed = %d, want 100", processed.Load())
	}
}

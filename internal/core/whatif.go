package core

import "dope/internal/monitor"

// WhatIfInputs converts stage reports into the what-if profiler's inputs.
// extents, when non-nil, overrides the worker count per stage (index-aligned
// with stages); otherwise each stage's live Workers gauge is used, falling
// back to its configured Extent while workers are still warming up. Service
// time prefers the smoothed ExecTime and falls back to the lifetime mean.
func WhatIfInputs(stages []StageReport, extents []int) []monitor.WhatIfInput {
	in := make([]monitor.WhatIfInput, len(stages))
	for i := range stages {
		st := &stages[i]
		workers := st.Workers
		if extents != nil && i < len(extents) {
			workers = extents[i]
		}
		if workers < 1 {
			workers = st.Extent
		}
		svc := st.ExecTime
		if svc <= 0 {
			svc = st.MeanExecTime
		}
		in[i] = monitor.WhatIfInput{
			Name:        st.Name,
			Parallel:    st.Type == PAR,
			Workers:     workers,
			MaxDoP:      st.MaxDoP,
			ServiceTime: svc,
			Rate:        st.Rate,
			Queue:       st.Load,
			Sojourn:     st.QueueSojourn,
			Ready:       st.Observed,
		}
	}
	return in
}

// WhatIf runs the causal what-if profiler over the nest's stages under its
// current configuration, answering "which stage's DoP (or service time) is
// worth a context": see monitor.WhatIf for the model.
func (n *NestReport) WhatIf() monitor.WhatIfReport {
	return monitor.WhatIf(WhatIfInputs(n.Stages, nil))
}

// WhatIf runs the what-if profiler over the root nest's stages. It returns
// an invalid report when the snapshot has no observation tree.
func (r *Report) WhatIf() monitor.WhatIfReport {
	if r == nil || r.Root == nil {
		return monitor.WhatIfReport{Reason: "no observation tree"}
	}
	return r.Root.WhatIf()
}

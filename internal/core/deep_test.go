package core

import (
	"encoding/json"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/queue"
)

// --- Config JSON -------------------------------------------------------------

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := &Config{Alt: 1, Extents: []int{3}}
	cfg.SetChild("video", &Config{Alt: 0, Extents: []int{1, 6, 1}})
	cfg.Child("video").SetChild("deep", &Config{Alt: 0, Extents: []int{2}})
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cfg) {
		t.Fatalf("round trip lost data: %s vs %s", back, cfg)
	}
}

func TestParseConfigLiteral(t *testing.T) {
	cfg, err := ParseConfig([]byte(
		`{"alt":0,"extents":[3],"children":{"video":{"alt":1,"extents":[1]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Extents[0] != 3 || cfg.Child("video").Alt != 1 {
		t.Fatalf("parsed = %s", cfg)
	}
	if _, err := ParseConfig([]byte(`{nope`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// --- three-level nesting -------------------------------------------------------

// threeLevelSpec builds playlist → video → frame: the root loop consumes
// playlists; each playlist runs a nested loop over its videos; each video
// runs a nested loop over its frames.
func threeLevelSpec(work *queue.Queue[int], frames *atomic.Int64) *NestSpec {
	frameLoop := &NestSpec{Name: "frame", Alts: []*AltSpec{{
		Name:   "doall",
		Stages: []StageSpec{{Name: "decode", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			var n atomic.Int64
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if n.Add(1) > 4 {
						return Finished
					}
					w.Begin() //dopevet:ignore suspendcheck finite test loop: exits via its own counter
					frames.Add(1)
					w.End()
					return Executing
				},
			}}}, nil
		},
	}}}
	videoLoop := &NestSpec{Name: "video", Alts: []*AltSpec{{
		Name:   "videos",
		Stages: []StageSpec{{Name: "transcode", Type: PAR, Nest: frameLoop}},
		Make: func(item any) (*AltInstance, error) {
			var n atomic.Int64
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if n.Add(1) > 3 {
						return Finished
					}
					if _, err := w.RunNest(frameLoop, item); err != nil {
						return Finished
					}
					return Executing
				},
			}}}, nil
		},
	}}}
	return &NestSpec{Name: "playlist", Alts: []*AltSpec{{
		Name:   "outer",
		Stages: []StageSpec{{Name: "serve", Type: PAR, Nest: videoLoop}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if w.Suspending() {
						return Suspended
					}
					v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					st, err := w.RunNest(videoLoop, v)
					if err != nil || st == Suspended {
						return Suspended
					}
					return Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func TestThreeLevelNestRunsAndReports(t *testing.T) {
	work := queue.New[int](0)
	var frames atomic.Int64
	spec := threeLevelSpec(work, &frames)
	cfg := &Config{Alt: 0, Extents: []int{2}}
	video := &Config{Alt: 0, Extents: []int{2}}
	video.SetChild("frame", &Config{Alt: 0, Extents: []int{2}})
	cfg.SetChild("video", video)
	e, err := New(spec, WithContexts(16), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	const playlists = 6
	for i := 0; i < playlists; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// playlists × 3 videos × 4 frames
	if got := frames.Load(); got != playlists*3*4 {
		t.Fatalf("frames = %d, want %d", got, playlists*3*4)
	}
	rep := e.Report()
	deep := rep.Nest("playlist/video/frame")
	if deep == nil {
		t.Fatal("three-level report path missing")
	}
	if deep.Stage("decode").Iterations == 0 {
		t.Fatal("deepest stage unmonitored")
	}
	if Demand(spec, e.CurrentConfig()) != 2*2*2 {
		t.Fatalf("demand = %d, want 8", Demand(spec, e.CurrentConfig()))
	}
}

// --- undeclared nest fallback ---------------------------------------------------

func TestUndeclaredNestRunsWithDefaults(t *testing.T) {
	// A functor may run a nest that its StageSpec did not declare; the
	// executive falls back to the nest's own default configuration.
	var innerRuns atomic.Int64
	secret := &NestSpec{Name: "secret", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			done := false
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if done {
						return Finished
					}
					done = true
					innerRuns.Add(1)
					return Executing
				},
			}}}, nil
		},
	}}}
	root := &NestSpec{Name: "root", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "outer", Type: SEQ}}, // no Nest declared
		Make: func(item any) (*AltInstance, error) {
			ran := false
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if ran {
						return Finished
					}
					ran = true
					if _, err := w.RunNest(secret, nil); err != nil {
						t.Errorf("undeclared nest failed: %v", err)
					}
					return Executing
				},
			}}}, nil
		},
	}}}
	e, err := New(root, WithContexts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if innerRuns.Load() != 1 {
		t.Fatalf("inner runs = %d", innerRuns.Load())
	}
}

// --- chaos: random reconfiguration storm ----------------------------------------

func TestChaosReconfigurationConservesWork(t *testing.T) {
	// A storm of random extent changes and alternative flips: the extent
	// changes exercise in-place worker-group resizes, the alternative flips
	// exercise the suspend→drain→respawn protocol, and the two interleave.
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := twoAltDoallSpec(work, &processed)
	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}))
	if err != nil {
		t.Fatal(err)
	}
	const items = 400
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 25; i++ {
			alt := 0
			if i%5 == 4 { // every fifth change flips the alternative
				alt = (i / 5) % 2
			}
			e.SetConfig(&Config{Alt: alt, Extents: []int{rng.Intn(8) + 1}})
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < items; i++ {
		work.Enqueue(i)
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	<-done
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != items {
		t.Fatalf("processed %d of %d under reconfiguration storm", processed.Load(), items)
	}
	if e.Suspensions() == 0 {
		t.Fatal("alternative flips caused no suspensions")
	}
	if e.Resizes() == 0 {
		t.Fatal("extent changes caused no in-place resizes")
	}
}

// --- goroutine hygiene -----------------------------------------------------------

func TestNoGoroutineLeakAfterWait(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		work := queue.New[int](0)
		var processed atomic.Int64
		e, err := New(doallSpec(work, &processed), WithContexts(4),
			WithInitialConfig(&Config{Alt: 0, Extents: []int{3}}))
		if err != nil {
			t.Fatal(err)
		}
		fillAndClose(work, 50)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after three runs", before, after)
	}
}

// --- Init/Fini contract ----------------------------------------------------------

func TestInitAndFiniOrdering(t *testing.T) {
	var mu sync.Mutex
	var events []string
	log := func(s string) {
		mu.Lock()
		events = append(events, s)
		mu.Unlock()
	}
	n := 0
	spec := &NestSpec{Name: "cb", Alts: []*AltSpec{{
		Name: "a",
		Stages: []StageSpec{
			{Name: "s1", Type: SEQ},
			{Name: "s2", Type: PAR},
		},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{
				{
					Init: func() { log("init-s1") },
					Fn: func(w *Worker) Status {
						if n >= 3 {
							return Finished
						}
						n++
						log("fn-s1")
						return Executing
					},
					Fini: func() { log("fini-s1") },
				},
				{
					Init: func() { log("init-s2") },
					Fn: func(w *Worker) Status {
						return Finished
					},
					Fini: func() { log("fini-s2") },
				},
			}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(4),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	idx := func(s string) int {
		for i, v := range events {
			if v == s {
				return i
			}
		}
		return -1
	}
	// InitCB runs exactly once per stage, before any Fn of that stage;
	// FiniCB runs exactly once, after all of the stage's workers exited.
	for _, st := range []string{"s1", "s2"} {
		if c := count(events, "init-"+st); c != 1 {
			t.Fatalf("init-%s ran %d times: %v", st, c, events)
		}
		if c := count(events, "fini-"+st); c != 1 {
			t.Fatalf("fini-%s ran %d times: %v", st, c, events)
		}
	}
	if idx("init-s1") > idx("fn-s1") {
		t.Fatalf("init after fn: %v", events)
	}
	if idx("fini-s1") < idx("fn-s1") {
		t.Fatalf("fini before fn: %v", events)
	}
	// Stage inits run in declaration order (sequentially at spawn).
	if idx("init-s1") > idx("init-s2") {
		t.Fatalf("stage init order violated: %v", events)
	}
}

func count(xs []string, want string) int {
	c := 0
	for _, x := range xs {
		if x == want {
			c++
		}
	}
	return c
}

package core

import (
	"time"

	"dope/internal/monitor"
)

// Worker is the execution context handed to a Functor. It provides the
// paper's Task methods: Begin/End delimit the CPU-intensive section (Table
// 2), and RunNest runs a nested loop for the current work item and waits
// for it (Task::wait).
//
// A Worker is owned by exactly one goroutine; it must not escape the
// functor invocation.
type Worker struct {
	exec  *Exec
	run   *run
	key   monitor.Key
	stats *monitor.StageStats
	path  []string
	// top is true for workers of the root loop; only they observe a
	// whole-run suspension, because nested instances always drain naturally
	// with their parent's current work item. Slot retirement (an in-place
	// shrink) is observed at every level.
	top   bool
	slot  int
	item  any
	group *workerGroup
	gslot *groupSlot
	// windowed caches group.windowed (whether any patrol can ever abandon
	// this group's slots); false for hand-built Workers, whose Begin/End
	// never interact with the watchdog anyway.
	windowed bool
	// rec is this worker's private monitor accumulator (one per attempt);
	// nil only for hand-built Workers in tests, which fall back to the
	// stage's locked Observe methods.
	rec *monitor.SlotRecorder

	holding bool
	// beginNanos is the open CPU section's start in unix nanoseconds, read
	// from exec.nowNanos (the monotonic fast path).
	beginNanos int64
	// began tracks an open Begin/End protocol window (set by every Begin,
	// including one that returned Suspended without claiming a context,
	// since drain stages may still work and End before propagating). Only
	// consulted by the misuse detector (WithProtocolCheck / DOPE_DEBUG=1).
	began bool
	// counted reports whether the current Begin registered its invocation
	// window with the slot (false once the stall watchdog has abandoned the
	// slot — the iteration must then stay invisible to the monitors).
	counted bool
}

// violation panics with a protocol-violation message. The worker loop
// recovers it, balances the CPU section, and surfaces it as the run error.
func violation(msg string) {
	panic("dope: protocol violation: " + msg)
}

// Slot returns this worker's id within its stage's worker group. In steady
// state ids lie in [0, extent); while a grow overlaps a still-draining
// shrink, a fresh worker may briefly carry an id at or above the extent
// rather than share one with a retiring worker. Useful for DOALL stages
// that partition an index space.
func (w *Worker) Slot() int { return w.slot }

// Item returns the work item the enclosing nested loop was instantiated
// for, or nil at the root.
func (w *Worker) Item() any { return w.item }

// Extent returns the DoP extent this worker's stage is currently configured
// for. With in-place resizing this is live: it tracks the group's target
// across reconfigurations rather than the value the worker was spawned
// with.
func (w *Worker) Extent() int { return w.group.Target() }

// Suspending reports whether the executive needs this worker to stop: its
// run is suspending for an alternative switch, or its slot was retired by
// an in-place shrink. Functors that block for work outside Begin/End (e.g.
// on a queue) consult it to stay responsive to reconfiguration, typically
// via queue.DequeueWhile.
func (w *Worker) Suspending() bool {
	if w.gslot != nil && w.gslot.retiring() {
		return true
	}
	return w.top && w.run.suspending()
}

// Begin signals that the CPU-intensive part of the task is starting. It
// claims a hardware context and starts the execution timer. If the
// executive needs the worker to stop (run suspension or slot retirement),
// Begin returns Suspended without claiming a context and the functor should
// return Suspended at once.
func (w *Worker) Begin() Status {
	e := w.exec
	if e.protocolCheck && w.began {
		violation("Worker.Begin while the previous Begin/End section is still open (double Begin)")
	}
	w.began = true
	if w.Suspending() {
		return Suspended
	}
	e.contexts.Acquire()
	w.holding = true
	w.beginNanos = e.nowNanos()
	// Open the invocation window the stall watchdog patrols. A slot
	// abandoned between the Suspending check and here refuses the window;
	// the worker then still owns the token (the watchdog had nothing to
	// reclaim) and End releases it without observing the iteration. A group
	// no patrol can ever visit (windowed == false) skips the window CAS:
	// abandonment is impossible there, so counted is trivially true.
	w.counted = !w.windowed || w.gslot == nil || w.gslot.openWindow(w.beginNanos)
	if w.counted {
		// Tell the monitors the stage is working again, so the idle wait
		// that just ended is excluded from the rate's next gap.
		if w.rec != nil {
			w.rec.ObserveBegin(w.beginNanos)
		} else {
			w.stats.ObserveBegin(time.Unix(0, w.beginNanos))
		}
	}
	return Executing
}

// End signals that the CPU-intensive part has ended: the context is
// released and the elapsed time is recorded for the monitors. Like Begin it
// reports Suspended when the worker should stop.
func (w *Worker) End() Status {
	e := w.exec
	if e.protocolCheck && !w.began {
		violation("Worker.End without a matching Worker.Begin")
	}
	w.began = false
	if w.holding {
		release, observe := true, w.counted
		if w.windowed && w.counted && w.gslot != nil {
			// Close the watchdog window; if the slot was abandoned while it
			// was open, the watchdog already released the token and told the
			// monitors the slot is gone, so this (late) End must do neither.
			release, observe = w.gslot.closeWindow()
		}
		w.holding = false
		if observe {
			now := e.nowNanos()
			dur := now - w.beginNanos
			if dur < 0 {
				// Guards the monitors against a clock anomaly (e.g. a
				// TSC that failed to stay invariant after calibration).
				dur = 0
			}
			if w.rec != nil {
				w.rec.ObserveEnd(dur, now)
			} else {
				t := time.Unix(0, now)
				w.stats.ObserveIteration(time.Duration(dur), t)
				w.stats.ObserveEnd(t)
			}
		}
		if release {
			e.contexts.Release()
		}
	}
	if w.Suspending() {
		return Suspended
	}
	return Executing
}

// Done returns a channel closed when the executive no longer wants this
// worker's slot to keep working: the slot was retired by a shrink,
// abandoned by the stall watchdog after a deadline overrun, or its run
// began suspending for a reconfiguration or Stop. Functors of deadlined
// stages should select on it inside long loops or waits so a cancelled
// invocation stops cooperatively instead of leaking its goroutine.
func (w *Worker) Done() <-chan struct{} {
	if w.gslot == nil {
		return nil
	}
	return w.gslot.cancelCh
}

// Context returns the slot's cooperative cancellation handle, suitable for
// passing down into application code that should not see the full Worker.
func (w *Worker) Context() *TaskContext {
	return &TaskContext{done: w.Done()}
}

// RunNest instantiates the nested loop spec for item under the current
// configuration, runs it to completion, and returns the master stage's
// final status (Finished on natural completion). When this worker must stop
// — its run is suspending, or its slot was retired by a shrink — RunNest
// reports Suspended after the nested loop has drained, so no work is lost.
//
// The stage must have declared spec in its StageSpec.Nest; undeclared nests
// still run but adapt only with default configuration.
func (w *Worker) RunNest(spec *NestSpec, item any) (Status, error) {
	if w.exec.protocolCheck && w.holding {
		violation("Worker.RunNest while holding a platform context (close the Begin/End section first)")
	}
	childPath := append(append([]string(nil), w.path...), spec.Name)
	st, err := w.exec.runNest(w.run, spec, childPath, item, false)
	if err != nil {
		return st, err
	}
	if w.Suspending() {
		return Suspended, nil
	}
	return st, nil
}

package core

import (
	"time"

	"dope/internal/monitor"
)

// Worker is the execution context handed to a Functor. It provides the
// paper's Task methods: Begin/End delimit the CPU-intensive section (Table
// 2), and RunNest runs a nested loop for the current work item and waits
// for it (Task::wait).
//
// A Worker is owned by exactly one goroutine; it must not escape the
// functor invocation.
type Worker struct {
	exec  *Exec
	run   *run
	key   monitor.Key
	stats *monitor.StageStats
	path  []string
	// top is true for workers of the root loop; only they observe
	// Suspended, because nested instances always drain naturally with
	// their parent's current work item.
	top    bool
	slot   int
	extent int
	item   any

	holding bool
	beginAt time.Time
}

// Slot returns this worker's index within its stage's DoP extent, in
// [0, extent). Useful for DOALL stages that partition an index space.
func (w *Worker) Slot() int { return w.slot }

// Item returns the work item the enclosing nested loop was instantiated
// for, or nil at the root.
func (w *Worker) Item() any { return w.item }

// Extent returns the DoP extent this worker's stage was spawned with.
func (w *Worker) Extent() int { return w.extent }

// Suspending reports whether the executive has requested reconfiguration of
// this worker's run. Functors that block for work outside Begin/End (e.g.
// on a queue) consult it to stay responsive to suspension, typically via
// queue.DequeueWhile.
func (w *Worker) Suspending() bool { return w.top && w.run.suspending() }

// Begin signals that the CPU-intensive part of the task is starting. It
// claims a hardware context and starts the execution timer. If the
// executive has requested reconfiguration (top-level workers only), Begin
// returns Suspended without claiming a context and the functor should
// return Suspended at once.
func (w *Worker) Begin() Status {
	if w.top && w.run.suspending() {
		return Suspended
	}
	w.exec.contexts.Acquire()
	w.holding = true
	w.beginAt = w.exec.clock.Now()
	return Executing
}

// End signals that the CPU-intensive part has ended: the context is
// released and the elapsed time is recorded for the monitors. Like Begin it
// reports Suspended when reconfiguration is pending.
func (w *Worker) End() Status {
	if w.holding {
		now := w.exec.clock.Now()
		w.stats.ObserveIteration(now.Sub(w.beginAt), now)
		w.holding = false
		w.exec.contexts.Release()
	}
	if w.top && w.run.suspending() {
		return Suspended
	}
	return Executing
}

// RunNest instantiates the nested loop spec for item under the current
// configuration, runs it to completion, and returns the master stage's
// final status (Finished on natural completion). When reconfiguration is
// pending and this is a top-level worker, RunNest reports Suspended after
// the nested loop has drained, so no work is lost.
//
// The stage must have declared spec in its StageSpec.Nest; undeclared nests
// still run but adapt only with default configuration.
func (w *Worker) RunNest(spec *NestSpec, item any) (Status, error) {
	childPath := append(append([]string(nil), w.path...), spec.Name)
	st, err := w.exec.runNest(w.run, spec, childPath, item, false)
	if err != nil {
		return st, err
	}
	if w.top && w.run.suspending() {
		return Suspended, nil
	}
	return st, nil
}

package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/queue"
)

// perItemSpec is doallSpec with per-item accounting: counts[v] records how
// many times item v was processed, so exactly-once claims survive -race and
// any interleaving of drains, resizes, and watchdog reclamation.
func perItemSpec(work *queue.Queue[int], counts []atomic.Int32, spin time.Duration) *NestSpec {
	mk := func(item any) (*AltInstance, error) {
		return &AltInstance{Stages: []StageFns{{
			Fn: func(w *Worker) Status {
				if w.Suspending() {
					return Suspended
				}
				v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
				if errors.Is(err, queue.ErrClosed) {
					return Finished
				}
				if !ok {
					return Suspended
				}
				w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
				if spin > 0 {
					for end := time.Now().Add(spin); time.Now().Before(end); {
					}
				}
				counts[v].Add(1)
				w.End()
				return Executing
			},
			Load: func() float64 { return float64(work.Len()) },
		}}}, nil
	}
	return &NestSpec{Name: "app", Alts: []*AltSpec{
		{Name: "doall-a", Stages: []StageSpec{{Name: "worker", Type: PAR}}, Make: mk},
		{Name: "doall-b", Stages: []StageSpec{{Name: "worker", Type: PAR}}, Make: mk},
	}}
}

// assertExactlyOnce fails unless every item was processed exactly once.
func assertExactlyOnce(t *testing.T, counts []atomic.Int32) {
	t.Helper()
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("item %d processed %d times, want exactly once", i, got)
		}
	}
}

// Resizes sweeping up and down while the extent oversubscribes a sharded
// multi-shard pool: retiring slots must return their tokens through the
// shard CAS path (never lose one to a blocked sibling), and growing must
// never mint one. Run with -race this also pins the shard-word and
// blocked-waiter protocol.
func TestResizeDuringPoolContention(t *testing.T) {
	const items, nCtx = 600, 4
	work := queue.New[int](0)
	counts := make([]atomic.Int32, items)
	spec := perItemSpec(work, counts, 20*time.Microsecond)
	e, err := New(spec, WithContexts(nCtx),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{12}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < items/2; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Thrash the extent around the pool size while items flow: 12 workers
	// on 4 contexts keeps acquirers parked in the slow tier the whole time.
	extents := []int{3, 12, 1, 8, 2, 12, 4, 10}
	for round := 0; round < 3; round++ {
		for _, x := range extents {
			e.SetConfig(&Config{Alt: 0, Extents: []int{x}})
			time.Sleep(2 * time.Millisecond)
		}
	}
	for i := items / 2; i < items; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, counts)
	c := e.Contexts()
	if c.Busy() != 0 {
		t.Fatalf("busy = %d after Wait, token leaked or double-freed", c.Busy())
	}
	if c.Peak() > nCtx {
		t.Fatalf("peak = %d exceeds pool size %d", c.Peak(), nCtx)
	}
	if c.Blocked() != 0 {
		t.Fatalf("blocked = %d after Wait", c.Blocked())
	}
	if got := e.Suspensions(); got != 0 {
		t.Fatalf("extent-only resizes caused %d suspensions", got)
	}
}

// Root-alternative switches force the full suspend→drain→respawn protocol
// while the pool stays oversubscribed. The drain guarantee under test: a
// claimed item is finished by the claiming slot before the respawned run
// starts, so nothing is processed twice and nothing is lost — even when
// every drain has workers parked on Acquire.
func TestDrainNoMigrationUnderContention(t *testing.T) {
	const items = 400
	work := queue.New[int](0)
	counts := make([]atomic.Int32, items)
	spec := perItemSpec(work, counts, 20*time.Microsecond)
	e, err := New(spec, WithContexts(2),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{6}}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < items/2; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.SetConfig(&Config{Alt: (i + 1) % 2, Extents: []int{6}})
		time.Sleep(5 * time.Millisecond)
	}
	for i := items / 2; i < items; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, counts)
	if e.Suspensions() == 0 {
		t.Fatal("alt switches caused no suspensions: the drain path was not exercised")
	}
	if busy := e.Contexts().Busy(); busy != 0 {
		t.Fatalf("busy = %d after Wait", busy)
	}
}

// Watchdog token reclamation across shards: tokens acquired from one shard
// of a multi-shard pool are reclaimed by the watchdog (to whatever shard
// has room) while live workers keep cycling the rest. The wedged workers'
// late Ends must be no-ops, and the final books must balance exactly.
func TestWatchdogReclaimsTokensAcrossShards(t *testing.T) {
	const nCtx = 8 // 8 shards: acquire and reclaim almost never hit the same one
	hold := make(chan struct{})
	var calls atomic.Int64
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := &NestSpec{Name: "app", Alts: []*AltSpec{{
		Name:   "doall",
		Stages: []StageSpec{{Name: "worker", Type: PAR, Deadline: 15 * time.Millisecond, OnFailure: FailRestart}},
		Make: func(item any) (*AltInstance, error) {
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if w.Suspending() {
						return Suspended
					}
					_, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return Finished
					}
					if !ok {
						return Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					if c := calls.Add(1); c <= 3 {
						//dopevet:ignore tokenhold the test wedges workers on purpose to exercise reclamation
						<-hold // three workers wedge holding tokens
					}
					processed.Add(1)
					w.End()
					return Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
	e, err := New(spec, WithContexts(nCtx),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{8}}))
	if err != nil {
		t.Fatal(err)
	}
	// Feed continuously so survivor progress is measurable for as long as
	// the test needs; the feeder closes the queue once told to stop.
	var stopFeed atomic.Bool
	go func() {
		for i := 0; !stopFeed.Load(); i++ {
			work.Enqueue(i)
			if work.Len() > 512 {
				time.Sleep(time.Millisecond)
			}
		}
		work.Close()
	}()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.TaskStalls() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("stalls detected = %d, want 3", e.TaskStalls())
		}
		time.Sleep(time.Millisecond)
	}
	// Reclaimed tokens must keep the survivors flowing.
	base := processed.Load()
	for processed.Load() <= base+50 {
		if time.Now().After(deadline) {
			t.Fatal("survivors made no progress: reclaimed tokens unusable")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold) // the three zombies End late, racing live traffic
	stopFeed.Store(true)
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	c := e.Contexts()
	if c.Busy() != 0 {
		t.Fatalf("busy = %d after Wait, late End double-released or leaked", c.Busy())
	}
	if c.Peak() > nCtx {
		t.Fatalf("peak = %d exceeds pool size %d", c.Peak(), nCtx)
	}
}

package core

import (
	"testing"
	"time"
)

// On machines where calibration accepts the TSC, the scaled clock must agree
// with the wall clock to well under the monitor control interval, and must
// never run backwards between consecutive reads.
func TestTSCClockTracksWallClock(t *testing.T) {
	calibrateTSC()
	if !tscOK {
		t.Skip("TSC declined by calibration on this machine")
	}
	for i := 0; i < 5; i++ {
		d := tscNow() - time.Now().UnixNano()
		if d < 0 {
			d = -d
		}
		if d > int64(50*time.Millisecond) {
			t.Fatalf("tscNow diverges from wall clock by %v", time.Duration(d))
		}
		time.Sleep(time.Millisecond)
	}
	prev := tscNow()
	for i := 0; i < 100_000; i++ {
		now := tscNow()
		if now < prev {
			t.Fatalf("tscNow went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

var clockSink int64

func BenchmarkTscNow(b *testing.B) {
	calibrateTSC()
	if !tscOK {
		b.Skip("TSC declined by calibration on this machine")
	}
	var x int64
	for i := 0; i < b.N; i++ {
		x += tscNow()
	}
	clockSink = x
}

func BenchmarkNanotime(b *testing.B) {
	var x int64
	for i := 0; i < b.N; i++ {
		x += nanotime()
	}
	clockSink = x
}

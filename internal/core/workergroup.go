package core

import (
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/monitor"
)

// groupSlot is one worker position within a stage's worker group. A shrink
// retires a specific slot by raising its retire flag; the slot's worker
// observes the flag at its next Begin/End (or DequeueWhile predicate check)
// and exits after finishing the current iteration, so no work is lost.
// A slot is never un-retired: a grow that follows a shrink spawns fresh
// slots instead, which keeps the retire flag single-transition and free of
// ABA races.
type groupSlot struct {
	id     int
	retire atomic.Bool

	// cancelCh is the slot's cooperative cancellation signal, surfaced to
	// functors as Worker.Done(). It is closed (once) when the slot is
	// retired, abandoned by the stall watchdog, or its run suspends.
	cancelOnce sync.Once
	cancelCh   chan struct{}

	// The invocation window brackets the worker's Begin..End CPU section
	// for the stall watchdog. Its state lives in one atomic word (winState,
	// bits below) plus the window's start time in nanoseconds, so the
	// watchdog abandoning the slot and a late End racing it settle the
	// platform-token and monitor accounting exactly once without a lock:
	// whichever CAS lands first — closeWindow clearing the open bit or the
	// watchdog setting the abandoned bit — decides who owns the token. If
	// the watchdog abandons mid-window it reclaims the token itself (the
	// reclaimed bit), and the late End neither releases a second token nor
	// observes the iteration. winStart is written before the open bit is
	// set, so a patrol that sees the bit also sees a start time no older
	// than that window's.
	winState atomic.Uint32
	winStart atomic.Int64 // UnixNano of the open window's Begin
}

// winState bits. abandoned is single-transition (never cleared), which is
// what lets openWindow refuse a window on an abandoned slot without a lock.
const (
	winOpenBit      = 1 << iota // a Begin..End section is in flight
	winAbandonedBit             // the stall watchdog claimed this slot
	winReclaimedBit             // ... and it reclaimed the in-flight token
)

func (s *groupSlot) retiring() bool { return s.retire.Load() }

// cancel closes the slot's Done channel; idempotent.
func (s *groupSlot) cancel() {
	s.cancelOnce.Do(func() { close(s.cancelCh) })
}

// retireAndCancel retires the slot and wakes any functor blocked on Done.
func (s *groupSlot) retireAndCancel() {
	s.retire.Store(true)
	s.cancel()
}

// openWindow records that the slot's worker entered its CPU section at
// nowNanos (unix nanoseconds). It reports false when the slot was abandoned
// first — the worker then owns an unaccounted token it must release itself,
// and the iteration must not reach the monitors.
func (s *groupSlot) openWindow(nowNanos int64) bool {
	s.winStart.Store(nowNanos)
	for {
		w := s.winState.Load()
		if w&winAbandonedBit != 0 {
			return false
		}
		if s.winState.CompareAndSwap(w, w|winOpenBit) {
			return true
		}
	}
}

// closeWindow ends the CPU section and reports whether the worker should
// release the platform token and observe the iteration. Both are false
// when the watchdog abandoned the slot mid-window: it already reclaimed
// the token, and the monitors were told the slot is gone. The CAS below
// and claimStall's CAS linearize the race: the state each one read decides
// the accounting, so it settles exactly once no matter the interleaving.
func (s *groupSlot) closeWindow() (release, observe bool) {
	for {
		w := s.winState.Load()
		if s.winState.CompareAndSwap(w, w&^uint32(winOpenBit)) {
			if w&winAbandonedBit != 0 {
				return w&winReclaimedBit == 0, false
			}
			return true, true
		}
	}
}

// claimStall marks the slot abandoned and reports whether the claim won
// (false: a previous patrol already claimed it) and whether the watchdog
// must reclaim an in-flight token (the window was open at claim time, so
// the racing End lost the CAS and will not release).
func (s *groupSlot) claimStall() (claimed, reclaim bool) {
	for {
		w := s.winState.Load()
		if w&winAbandonedBit != 0 {
			return false, false
		}
		nw := w | winAbandonedBit
		if w&winOpenBit != 0 {
			nw |= winReclaimedBit
		}
		if s.winState.CompareAndSwap(w, nw) {
			return true, w&winOpenBit != 0
		}
	}
}

// workerGroup owns the worker goroutines of one stage instance. It is the
// unit of in-place reconfiguration: the executive grows a group by spawning
// slots and shrinks it by retiring them, while every other stage of the
// nest keeps flowing. Only an alternative switch (fusion ↔ pipeline) still
// pays for the whole-nest suspend→drain→respawn protocol.
type workerGroup struct {
	exec   *Exec
	r      *run
	key    monitor.Key
	stats  *monitor.StageStats
	st     *StageSpec
	fns    StageFns
	path   []string
	top    bool
	item   any
	altIdx int
	idx    int // stage index within the alternative (config extent slot)

	// Failure handling, resolved from the stage spec and the executive
	// defaults at group creation (see failure.go). deadline bounds one
	// invocation's Begin..End section for the stall watchdog (stall.go);
	// zero means unwatched.
	policy   FailurePolicy
	budget   int
	window   time.Duration
	deadline time.Duration
	// windowed is false when nothing can ever patrol this group's slots —
	// no per-invocation deadline and no drain timeout — so the abandoned
	// bit can never be set and Begin/End skip the window CASes entirely.
	// Computed once at group creation from settings that cannot change
	// during the group's lifetime.
	windowed bool

	mu        sync.Mutex
	slots     []*groupSlot // live slots, including those draining a retirement
	target    int          // desired extent; slots converge toward it
	started   bool
	closed    bool // all slots exited; resizes are no-ops from here on
	sawSusp   bool // a non-retired slot exited with Suspended
	sawFin    bool // a slot exited with Finished: the stage's input is exhausted
	failTimes []time.Time // failure timestamps within the rolling window
	done      chan struct{}
}

// setTarget records a desired extent before the group has started; start()
// spawns exactly the recorded target. After start it is a no-op — use
// resize.
func (g *workerGroup) setTarget(n int) {
	g.mu.Lock()
	if !g.started {
		g.target = n
	}
	g.mu.Unlock()
}

// start spawns the group's initial slots and registers the group with the
// stall watchdog. Must be called exactly once.
func (g *workerGroup) start() {
	g.exec.watch(g)
	g.mu.Lock()
	g.started = true
	g.spawnLocked(g.target)
	g.mu.Unlock()
}

// resize moves the group toward extent n in place: it retires the
// highest-id active slots on a shrink and spawns fresh slots on a grow. It
// reports the previous target and whether anything changed. Called with the
// executive's install lock held, which serializes competing resizes.
func (g *workerGroup) resize(n int) (from int, changed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	from = g.target
	if g.closed || n == g.target {
		return from, false
	}
	g.target = n
	if !g.started {
		// Spawn has not happened yet; start() will use the new target.
		return from, true
	}
	active := g.activeLocked()
	switch {
	case n < len(active):
		// Retire from the top so steady-state slot ids stay [0, extent).
		sort.Slice(active, func(i, j int) bool { return active[i].id > active[j].id })
		for _, s := range active[:len(active)-n] {
			s.retireAndCancel()
		}
	case n > len(active):
		g.spawnLocked(n - len(active))
	}
	g.stats.ObserveResize()
	return from, true
}

// activeLocked returns the slots not yet marked for retirement.
func (g *workerGroup) activeLocked() []*groupSlot {
	active := make([]*groupSlot, 0, len(g.slots))
	for _, s := range g.slots {
		if !s.retiring() {
			active = append(active, s)
		}
	}
	return active
}

// spawnLocked starts n fresh slots on the lowest ids not held by any live
// slot. Retiring slots keep their id until they exit, so a grow that
// overlaps a draining shrink briefly uses ids at or above the extent rather
// than double-booking one.
func (g *workerGroup) spawnLocked(n int) {
	used := make(map[int]bool, len(g.slots))
	for _, s := range g.slots {
		used[s.id] = true
	}
	id := 0
	for i := 0; i < n; i++ {
		for used[id] {
			id++
		}
		used[id] = true
		s := &groupSlot{id: id, cancelCh: make(chan struct{})}
		if g.r.suspending() {
			// The run began suspending between this spawn's trigger and
			// now; a slot born cancelled keeps Done() truthful for it.
			s.cancel()
		}
		g.slots = append(g.slots, s)
		g.stats.ObserveWorkerStart()
		go g.runSlot(s)
	}
}

// Target returns the extent the group is converging toward.
func (g *workerGroup) Target() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.target
}

// runSlot is one worker goroutine: it drives the stage functor until the
// stage finishes, the run suspends, this slot is retired by a shrink, or a
// functor panic is answered with a terminal policy. Under FailRestart the
// slot respawns in place — a fresh Worker on the same slot id — after the
// failure backoff.
func (g *workerGroup) runSlot(s *groupSlot) {
	defer g.slotExit(s)
	for {
		st, p, stack := g.attempt(s)
		if p == nil {
			// A retired slot exiting Suspended is just the shrink landing;
			// from a slot that was not retired it means the run (or this
			// nest instance) is suspending.
			if st == Suspended && !s.retiring() {
				g.mu.Lock()
				g.sawSusp = true
				g.mu.Unlock()
			}
			if st == Finished {
				// Recorded before the deferred slotExit removes the slot, so
				// anyone holding g.mu sees either this slot still active or
				// sawFin already set — never neither.
				g.mu.Lock()
				g.sawFin = true
				g.mu.Unlock()
			}
			return
		}
		if !g.failed(s, p, stack) {
			return
		}
	}
}

// attempt drives one spawn of the slot: a fresh Worker iterating the functor
// until a normal exit or a panic, which is recovered here — the recovery
// site — so the stack still contains the panicking frames.
func (g *workerGroup) attempt(s *groupSlot) (st Status, p any, stack []byte) {
	w := &Worker{
		exec: g.exec, run: g.r, key: g.key, stats: g.stats,
		path: g.path, top: g.top, slot: s.id, item: g.item,
		group: g, gslot: s, windowed: g.windowed,
		rec: g.stats.NewSlotRecorder(),
	}
	// Folds the attempt's final partial batch; runs after the recover below
	// so a panic-balancing End still lands in the accumulator.
	defer w.rec.Release()
	defer func() {
		// A panicking functor must not take down the whole process (the
		// paper's tasks are application code the runtime cannot vouch for):
		// capture the stack, balance the CPU section, and hand the failure
		// to the stage's policy.
		if r := recover(); r != nil {
			p, stack = r, debug.Stack()
			if w.holding {
				w.End()
			}
		}
	}()
	for {
		status := g.fns.Fn(w)
		if w.holding {
			// The functor returned without closing its CPU section; balance
			// it so the context is not leaked. This is the runtime's own
			// repair path, not a functor, so the protocol checks don't apply.
			w.End() //dopevet:ignore beginend,suspendcheck runtime balancer closes a window the functor leaked
		}
		switch status {
		case Executing:
			if s.retiring() {
				return Executing, nil, nil // retirement observed between iterations
			}
		case Suspended:
			return Suspended, nil, nil
		default:
			return Finished, nil, nil
		}
	}
}

// failed applies the stage's failure policy to one panicked attempt and
// reports whether the slot should respawn. Escalation rules: FailRestart
// falls back to FailStop when the stage overruns its failure budget within
// the rolling window; FailDegrade does so when the failing slot is the
// stage's last active one.
func (g *workerGroup) failed(s *groupSlot, p any, stack []byte) (respawn bool) {
	e := g.exec
	now := e.clock.Now()
	g.mu.Lock()
	cut := now.Add(-g.window)
	kept := g.failTimes[:0]
	for _, ft := range g.failTimes {
		if ft.After(cut) {
			kept = append(kept, ft)
		}
	}
	g.failTimes = append(kept, now)
	inWindow := len(g.failTimes)
	active := len(g.activeLocked())
	streamDone := g.sawFin
	g.mu.Unlock()

	consec := g.stats.ObserveFailure()
	e.taskFailures.Add(1)

	policy, escalated := g.policy, false
	switch policy {
	case FailRestart:
		if inWindow > g.budget {
			policy, escalated = FailStop, true
		}
	case FailDegrade:
		// Degrading the last active slot normally kills the stage while
		// upstream may still feed it, so it escalates — unless a sibling
		// already finished the stream, in which case retiring the last
		// slot just completes the (input-exhausted) stage.
		if active <= 1 && !streamDone {
			policy, escalated = FailStop, true
		}
	}

	err := taskError(g.key, p, stack)
	e.emit(Event{
		Kind: EventTaskFailure,
		Nest: g.key.Nest, Stage: g.key.Stage,
		Policy: policy, Escalated: escalated,
		Failures: inWindow, ConsecFailures: consec,
		Err: err, Stack: string(stack),
	})
	// Failures are rare and severe: deliver now rather than at the next
	// tick, so an operator's trace shows the failure before its fallout.
	e.flushTrace()

	switch policy {
	case FailRestart:
		g.backoff(s, e.restartBackoff(inWindow))
		if s.retiring() || e.stop.Load() {
			return false
		}
		if g.top && g.r.suspending() {
			g.mu.Lock()
			g.sawSusp = true
			g.mu.Unlock()
			return false
		}
		return true
	case FailDegrade:
		g.degrade(s)
		return false
	default: // FailStop
		e.recordTaskFailure(err)
		return false
	}
}

// backoff sleeps for up to d before a FailRestart respawn, staying
// responsive to retirement, suspension, and Stop.
func (g *workerGroup) backoff(s *groupSlot, d time.Duration) {
	const step = 500 * time.Microsecond
	deadline := time.Now().Add(d)
	for {
		if s.retiring() || g.exec.stop.Load() || (g.top && g.r.suspending()) {
			return
		}
		left := time.Until(deadline)
		if left <= 0 {
			return
		}
		if left > step {
			left = step
		}
		time.Sleep(left)
	}
}

// degrade retires the failing slot and shrinks the stage by one: the group
// target drops (floor 1), and for a top-level group the shrink is written
// into the active configuration under the install lock so CurrentConfig,
// Report, and mechanisms all observe it — a mechanism that wants the extent
// back simply proposes it again. Nested groups only shrink this instance;
// the next instantiation starts from the configured extent anyway.
func (g *workerGroup) degrade(s *groupSlot) {
	e := g.exec
	e.installMu.Lock()
	g.mu.Lock()
	s.retireAndCancel()
	from := g.target
	if g.target > 1 {
		g.target--
	}
	to := g.target
	g.mu.Unlock()
	if g.top {
		if cur := e.cfg.Load(); cur != nil && cur.Alt == g.altIdx && g.idx < len(cur.Extents) {
			nc := cur.Clone()
			nc.Extents[g.idx] = to
			e.cfg.Store(nc)
		}
	}
	e.installMu.Unlock()
	e.resizes.Add(1)
	g.stats.ObserveResize()
	e.emit(Event{
		Kind: EventResize, Stage: g.st.Name,
		FromExtent: from, ToExtent: to,
		Config: e.cfg.Load().Clone(), Mechanism: FailDegrade.String(),
	})
	// Part of the failure path: deliver with the failure, not a tick later.
	e.flushTrace()
}

// slotExit removes s from the group and closes the group when the last slot
// leaves. Fini (run by the nest) must only fire once every slot is out, so
// the close condition counts retiring slots too. A slot the watchdog
// already abandoned is no longer in the group — its accounting was settled
// at abandonment and the group may have closed (and the nest respawned)
// long ago — so only the zombie gauge learns that the goroutine finally
// exited.
func (g *workerGroup) slotExit(s *groupSlot) {
	g.mu.Lock()
	found := false
	for i, other := range g.slots {
		if other == s {
			g.slots = append(g.slots[:i], g.slots[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		g.mu.Unlock()
		g.stats.ObserveZombieExit()
		return
	}
	finished := g.started && len(g.slots) == 0 && !g.closed
	if finished {
		g.closed = true
	}
	g.mu.Unlock()
	g.stats.ObserveWorkerExit(s.retiring())
	if finished {
		g.exec.unwatch(g)
		close(g.done)
	}
}

// wait blocks until every slot has exited.
func (g *workerGroup) wait() { <-g.done }

// suspended reports whether a non-retired slot exited with Suspended.
func (g *workerGroup) suspended() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sawSusp
}

// cancelSlots closes every live slot's Done channel; the run calls it when
// it begins suspending so functors blocked inside a CPU section (or on a
// TaskContext-aware wait) observe the drain request promptly.
func (g *workerGroup) cancelSlots() {
	g.mu.Lock()
	slots := append([]*groupSlot(nil), g.slots...)
	g.mu.Unlock()
	for _, s := range slots {
		s.cancel()
	}
}

// patrolDeadline is one watchdog sweep over the group's slots: any open
// invocation window older than the group's deadline is a stall.
func (g *workerGroup) patrolDeadline(now time.Time) {
	if g.deadline <= 0 {
		return
	}
	g.mu.Lock()
	slots := append([]*groupSlot(nil), g.slots...)
	g.mu.Unlock()
	for _, s := range slots {
		w := s.winState.Load()
		if w&(winOpenBit|winAbandonedBit) != winOpenBit {
			continue
		}
		start := time.Unix(0, s.winStart.Load())
		if age := now.Sub(start); age > g.deadline {
			g.stalled(s, age)
		}
	}
}

// patrolDrain handles an expired drain timeout: every slot still alive
// this long after the run began suspending is keeping Wait (and the next
// configuration) hostage, so each is treated as stalled regardless of
// deadlines or window state.
func (g *workerGroup) patrolDrain(age time.Duration) {
	g.mu.Lock()
	slots := append([]*groupSlot(nil), g.slots...)
	g.mu.Unlock()
	for _, s := range slots {
		g.stalled(s, age)
	}
}

// stalled applies the stage's failure policy to one stalled slot. It
// mirrors failed(): stalls share the stage's rolling failure window and
// escalation rules (FailRestart over budget, FailDegrade on the last
// active slot). Unlike a panic, the stuck goroutine cannot be joined; the
// slot is abandoned — token reclaimed, accounting fenced, Done closed so a
// cooperative functor can unblock — and under FailRestart a replacement is
// spawned unless the run is draining.
func (g *workerGroup) stalled(s *groupSlot, age time.Duration) {
	// Claim the stall first: the abandoned bit is the single-settlement
	// point against both a racing late End and the next patrol tick.
	claimed, reclaim := s.claimStall()
	if !claimed {
		return
	}
	s.retireAndCancel()

	e := g.exec
	duringDrain := g.r.suspending()
	now := e.clock.Now()
	g.mu.Lock()
	cut := now.Add(-g.window)
	kept := g.failTimes[:0]
	for _, ft := range g.failTimes {
		if ft.After(cut) {
			kept = append(kept, ft)
		}
	}
	g.failTimes = append(kept, now)
	inWindow := len(g.failTimes)
	active := len(g.activeLocked())
	streamDone := g.sawFin
	g.mu.Unlock()

	e.taskStalls.Add(1)
	g.stats.ObserveStall(duringDrain)

	policy, escalated := g.policy, false
	if !duringDrain {
		// During a drain there is nothing to restart into and no extent
		// worth shrinking; restart/degrade both reduce to the abandonment
		// below. Outside a drain the panic-path escalation rules apply.
		switch policy {
		case FailRestart:
			if inWindow > g.budget {
				policy, escalated = FailStop, true
			}
		case FailDegrade:
			// s was already retired above, so unlike failed()'s "active
			// <= 1" the stage is down to its last slot when no active
			// slots remain besides it. If a sibling already finished the
			// stream, though, the input is exhausted and abandoning the
			// last slot simply completes the stage — nothing upstream can
			// starve, so degrading (to an empty, closing group) is safe.
			if active == 0 && !streamDone {
				policy, escalated = FailStop, true
			}
		}
	}

	var err error
	var stack []byte
	if policy == FailStop {
		stack = allStacks()
		err = stallError(g.key, age, g.deadline, stack)
	}
	e.emit(Event{
		Kind: EventTaskStall,
		Nest: g.key.Nest, Stage: g.key.Stage,
		Policy: policy, Escalated: escalated, DuringDrain: duringDrain,
		Deadline: g.deadline, Stalled: age,
		Failures: inWindow, Err: err, Stack: string(stack),
	})

	if reclaim {
		e.contexts.Release()
	}
	g.stats.ObserveAbandon()
	g.mu.Lock()
	for i, other := range g.slots {
		if other == s {
			g.slots = append(g.slots[:i], g.slots[i+1:]...)
			break
		}
	}
	respawn := policy == FailRestart && !duringDrain &&
		!e.stop.Load() && !g.r.suspending() && !g.closed
	if respawn {
		g.spawnLocked(1)
	}
	finished := g.started && len(g.slots) == 0 && !g.closed
	if finished {
		g.closed = true
	}
	g.mu.Unlock()
	if finished {
		e.unwatch(g)
		close(g.done)
	}

	switch policy {
	case FailDegrade:
		if !duringDrain {
			g.degrade(s)
		}
	case FailStop:
		e.recordTaskFailure(err)
	}
}

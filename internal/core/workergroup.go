package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"dope/internal/monitor"
)

// groupSlot is one worker position within a stage's worker group. A shrink
// retires a specific slot by raising its retire flag; the slot's worker
// observes the flag at its next Begin/End (or DequeueWhile predicate check)
// and exits after finishing the current iteration, so no work is lost.
// A slot is never un-retired: a grow that follows a shrink spawns fresh
// slots instead, which keeps the retire flag single-transition and free of
// ABA races.
type groupSlot struct {
	id     int
	retire atomic.Bool
}

func (s *groupSlot) retiring() bool { return s.retire.Load() }

// workerGroup owns the worker goroutines of one stage instance. It is the
// unit of in-place reconfiguration: the executive grows a group by spawning
// slots and shrinks it by retiring them, while every other stage of the
// nest keeps flowing. Only an alternative switch (fusion ↔ pipeline) still
// pays for the whole-nest suspend→drain→respawn protocol.
type workerGroup struct {
	exec   *Exec
	r      *run
	key    monitor.Key
	stats  *monitor.StageStats
	st     *StageSpec
	fns    StageFns
	path   []string
	top    bool
	item   any
	altIdx int

	mu      sync.Mutex
	slots   []*groupSlot // live slots, including those draining a retirement
	target  int          // desired extent; slots converge toward it
	started bool
	closed  bool // all slots exited; resizes are no-ops from here on
	sawSusp bool // a non-retired slot exited with Suspended
	done    chan struct{}
}

// setTarget records a desired extent before the group has started; start()
// spawns exactly the recorded target. After start it is a no-op — use
// resize.
func (g *workerGroup) setTarget(n int) {
	g.mu.Lock()
	if !g.started {
		g.target = n
	}
	g.mu.Unlock()
}

// start spawns the group's initial slots. Must be called exactly once.
func (g *workerGroup) start() {
	g.mu.Lock()
	g.started = true
	g.spawnLocked(g.target)
	g.mu.Unlock()
}

// resize moves the group toward extent n in place: it retires the
// highest-id active slots on a shrink and spawns fresh slots on a grow. It
// reports the previous target and whether anything changed. Called with the
// executive's install lock held, which serializes competing resizes.
func (g *workerGroup) resize(n int) (from int, changed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	from = g.target
	if g.closed || n == g.target {
		return from, false
	}
	g.target = n
	if !g.started {
		// Spawn has not happened yet; start() will use the new target.
		return from, true
	}
	active := g.activeLocked()
	switch {
	case n < len(active):
		// Retire from the top so steady-state slot ids stay [0, extent).
		sort.Slice(active, func(i, j int) bool { return active[i].id > active[j].id })
		for _, s := range active[:len(active)-n] {
			s.retire.Store(true)
		}
	case n > len(active):
		g.spawnLocked(n - len(active))
	}
	g.stats.ObserveResize()
	return from, true
}

// activeLocked returns the slots not yet marked for retirement.
func (g *workerGroup) activeLocked() []*groupSlot {
	active := make([]*groupSlot, 0, len(g.slots))
	for _, s := range g.slots {
		if !s.retiring() {
			active = append(active, s)
		}
	}
	return active
}

// spawnLocked starts n fresh slots on the lowest ids not held by any live
// slot. Retiring slots keep their id until they exit, so a grow that
// overlaps a draining shrink briefly uses ids at or above the extent rather
// than double-booking one.
func (g *workerGroup) spawnLocked(n int) {
	used := make(map[int]bool, len(g.slots))
	for _, s := range g.slots {
		used[s.id] = true
	}
	id := 0
	for i := 0; i < n; i++ {
		for used[id] {
			id++
		}
		used[id] = true
		s := &groupSlot{id: id}
		g.slots = append(g.slots, s)
		g.stats.ObserveWorkerStart()
		go g.runSlot(s)
	}
}

// Target returns the extent the group is converging toward.
func (g *workerGroup) Target() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.target
}

// runSlot is one worker goroutine: it drives the stage functor until the
// stage finishes, the run suspends, or this slot is retired by a shrink.
func (g *workerGroup) runSlot(s *groupSlot) {
	w := &Worker{
		exec: g.exec, run: g.r, key: g.key, stats: g.stats,
		path: g.path, top: g.top, slot: s.id, item: g.item,
		group: g, gslot: s,
	}
	defer g.slotExit(s)
	defer func() {
		// A panicking functor must not take down the whole process (the
		// paper's tasks are application code the runtime cannot vouch for):
		// balance the CPU section, record the failure, and stop the run.
		if p := recover(); p != nil {
			if w.holding {
				w.End()
			}
			g.exec.recordTaskPanic(g.key, p)
		}
	}()
	for {
		status := g.fns.Fn(w)
		if w.holding {
			// The functor returned without closing its CPU section; balance
			// it so the context is not leaked. This is the runtime's own
			// repair path, not a functor, so the protocol checks don't apply.
			w.End() //dopevet:ignore beginend,suspendcheck runtime balancer closes a window the functor leaked
		}
		switch status {
		case Executing:
			if s.retiring() {
				return // retirement observed between iterations
			}
		case Suspended:
			// A retired slot exiting Suspended is just the shrink landing;
			// from a slot that was not retired it means the run (or this
			// nest instance) is suspending.
			if !s.retiring() {
				g.mu.Lock()
				g.sawSusp = true
				g.mu.Unlock()
			}
			return
		default: // Finished
			return
		}
	}
}

// slotExit removes s from the group and closes the group when the last slot
// leaves. Fini (run by the nest) must only fire once every slot is out, so
// the close condition counts retiring slots too.
func (g *workerGroup) slotExit(s *groupSlot) {
	g.mu.Lock()
	for i, other := range g.slots {
		if other == s {
			g.slots = append(g.slots[:i], g.slots[i+1:]...)
			break
		}
	}
	finished := g.started && len(g.slots) == 0 && !g.closed
	if finished {
		g.closed = true
	}
	g.mu.Unlock()
	g.stats.ObserveWorkerExit(s.retiring())
	if finished {
		close(g.done)
	}
}

// wait blocks until every slot has exited.
func (g *workerGroup) wait() { <-g.done }

// suspended reports whether a non-retired slot exited with Suspended.
func (g *workerGroup) suspended() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sawSusp
}

// Package core implements the Degree of Parallelism Executive: the task
// model, the configuration tree, the monitoring hooks, and the
// suspend→drain→reconfigure→resume protocol of the paper (§3–§6).
//
// # Model
//
// An application declares its parallelism as a static tree of nest
// specifications. A NestSpec corresponds to one parallelized loop and offers
// one or more alternatives (the paper's choice of ParDescriptors, used by
// task fusion). Each AltSpec lists its stages (the paper's Tasks: SEQ or
// PAR) and provides a Make factory that instantiates fresh functors and
// queues for one run of the loop. A stage may declare a nested NestSpec;
// its functor runs the nested loop for the current work item via
// Worker.RunNest, and each concurrent parent worker owns a private instance
// of the nested loop — exactly the Pthreads structure of Figure 7, where
// every outer transcoding thread spawns its own inner pipeline.
//
// The executive assigns each nest a Config: which alternative runs and with
// what DoP extent per stage. Each running stage is backed by a worker group
// (one goroutine per slot of the stage's extent), and the executive applies
// configuration changes with the cheapest protocol that realizes them:
//
//   - inner-nest changes take effect at the next nested instantiation;
//   - root extent-only changes resize the affected worker groups in place —
//     a grow spawns fresh slots, a shrink retires specific slots, which
//     observe retirement at their next Begin/End and exit after the current
//     iteration while every other stage keeps flowing;
//   - a root alternative switch (e.g. fusion ↔ pipeline), which changes the
//     stage set itself, uses the full suspension protocol: top-level workers
//     observe Suspended from Task.Begin / Task.End, drain via their FiniCBs,
//     and are respawned under the new configuration.
package core

// Status is the state a task reports after each iteration of its loop body
// (the paper's TaskStatus).
type Status int

const (
	// Executing means the loop should continue with another iteration.
	Executing Status = iota
	// Suspended means the executive asked this worker to stop and the task
	// has reached a consistent point; the worker loop exits. For a
	// whole-nest suspension the workers are respawned under the new
	// configuration; for a slot retired by an in-place shrink the exit is
	// final while the stage's remaining workers keep running.
	Suspended
	// Finished means the loop's exit branch was taken; the task is done.
	Finished
)

// String returns the conventional name of the status.
func (s Status) String() string {
	switch s {
	case Executing:
		return "EXECUTING"
	case Suspended:
		return "SUSPENDED"
	case Finished:
		return "FINISHED"
	default:
		return "INVALID"
	}
}

// TaskType says whether a stage's functor may be invoked concurrently by
// multiple workers (the paper's SEQ | PAR).
type TaskType int

const (
	// SEQ stages always run with extent 1.
	SEQ TaskType = iota
	// PAR stages run with any extent the configuration assigns.
	PAR
)

// String returns the conventional name of the task type.
func (t TaskType) String() string {
	if t == SEQ {
		return "SEQ"
	}
	return "PAR"
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/platform"
	"dope/internal/queue"
)

func TestWorkerSlotAndItemAndExtent(t *testing.T) {
	var mu sync.Mutex
	slots := map[int]bool{}
	var sawItem atomic.Value
	inner := &NestSpec{Name: "in", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "s", Type: PAR}},
		Make: func(item any) (*AltInstance, error) {
			var n atomic.Int64
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if n.Add(1) > 12 {
						return Finished
					}
					mu.Lock()
					slots[w.Slot()] = true
					mu.Unlock()
					if w.Extent() != 3 {
						t.Errorf("extent = %d, want 3", w.Extent())
					}
					sawItem.Store(w.Item())
					w.Begin()                          //dopevet:ignore suspendcheck,tokenhold the sleep holds the window so every slot joins this doall
					time.Sleep(500 * time.Microsecond) // let every slot join in
					w.End()
					return Executing
				},
			}}}, nil
		},
	}}}
	root := &NestSpec{Name: "out", Alts: []*AltSpec{{
		Name:   "a",
		Stages: []StageSpec{{Name: "o", Type: SEQ, Nest: inner}},
		Make: func(item any) (*AltInstance, error) {
			done := false
			return &AltInstance{Stages: []StageFns{{
				Fn: func(w *Worker) Status {
					if done {
						return Finished
					}
					done = true
					if _, err := w.RunNest(inner, "payload"); err != nil {
						t.Error(err)
					}
					return Executing
				},
			}}}, nil
		},
	}}}
	cfg := &Config{Alt: 0, Extents: []int{1}}
	cfg.SetChild("in", &Config{Alt: 0, Extents: []int{3}})
	e, err := New(root, WithContexts(4), WithInitialConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < 3; s++ {
		if !slots[s] {
			t.Fatalf("slot %d never ran: %v", s, slots)
		}
	}
	if got, _ := sawItem.Load().(string); got != "payload" {
		t.Fatalf("item = %v", sawItem.Load())
	}
}

func TestOptionPlumbing(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	pool := platform.NewContexts(5)
	feats := platform.NewFeatures()
	clock := platform.NewVirtualClock(time.Unix(0, 0))
	e, err := New(doallSpec(work, &processed),
		WithContextPool(pool),
		WithFeatures(feats),
		WithClock(clock),
		WithMonitorAlpha(0.9),
		WithControlInterval(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	if e.Contexts() != pool {
		t.Fatal("context pool not installed")
	}
	if e.Features() != feats {
		t.Fatal("feature registry not installed")
	}
	if e.Clock() != platform.Clock(clock) {
		t.Fatal("clock not installed")
	}
	if v, err := feats.Value(platform.FeatureHardwareContexts); err != nil || v != 5 {
		t.Fatalf("contexts feature = %v, %v", v, err)
	}
	// Nil/zero options are ignored rather than clobbering defaults.
	e2, err := New(doallSpec(work, &processed),
		WithClock(nil), WithFeatures(nil), WithControlInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Clock() == nil || e2.Features() == nil {
		t.Fatal("nil options clobbered defaults")
	}
	if e.Uptime() != 0 {
		t.Fatal("uptime before start should be zero")
	}
	work.Close()
	e.Run()
	e2.Run()
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genSpec builds a random valid spec tree from a seed: 1–3 alternatives per
// nest, 1–4 stages per alternative, nesting up to the given depth.
func genSpec(rng *rand.Rand, name string, depth int) *NestSpec {
	spec := &NestSpec{Name: name}
	nAlts := rng.Intn(3) + 1
	for a := 0; a < nAlts; a++ {
		alt := &AltSpec{
			Name: name + "-alt" + string(rune('a'+a)),
			Make: func(item any) (*AltInstance, error) { return nil, nil },
		}
		nStages := rng.Intn(4) + 1
		for s := 0; s < nStages; s++ {
			st := StageSpec{Name: name + "-s" + string(rune('0'+s))}
			if rng.Intn(2) == 1 {
				st.Type = PAR
				if rng.Intn(3) == 0 {
					st.MaxDoP = rng.Intn(8) + 1
					st.MinDoP = rng.Intn(st.MaxDoP) + 1
				}
			}
			if depth > 0 && rng.Intn(3) == 0 {
				st.Nest = genSpec(rng, name+"n"+string(rune('0'+s)), depth-1)
			}
			alt.Stages = append(alt.Stages, st)
		}
		spec.Alts = append(spec.Alts, alt)
	}
	return spec
}

// Property: every generated spec validates, its default config normalizes
// idempotently, and demand is positive and consistent under cloning.
func TestGeneratedSpecsValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := genSpec(rng, "g", 2)
		if err := spec.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		cfg := DefaultConfig(spec)
		cfg.Normalize(spec)
		once := cfg.Clone()
		cfg.Normalize(spec)
		if !cfg.Equal(once) {
			return false
		}
		d := Demand(spec, cfg)
		if d < 1 {
			return false
		}
		return Demand(spec, cfg.Clone()) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: normalizing a random (possibly insane) config against a random
// spec yields extents within every stage's bounds, at every level of the
// chosen alternatives.
func TestNormalizeBoundsProperty(t *testing.T) {
	checkBounds := func(spec *NestSpec, cfg *Config) bool {
		alt := spec.Alt(cfg.Alt)
		if len(cfg.Extents) != len(alt.Stages) {
			return false
		}
		for i, st := range alt.Stages {
			e := cfg.Extents[i]
			if e < 1 {
				return false
			}
			if st.Type == SEQ && e != 1 {
				return false
			}
			if st.MaxDoP > 0 && e > st.MaxDoP {
				return false
			}
		}
		return true
	}
	var walk func(spec *NestSpec, cfg *Config) bool
	walk = func(spec *NestSpec, cfg *Config) bool {
		if !checkBounds(spec, cfg) {
			return false
		}
		alt := spec.Alt(cfg.Alt)
		for i := range alt.Stages {
			if n := alt.Stages[i].Nest; n != nil {
				child := cfg.Child(n.Name)
				if child == nil || !walk(n, child) {
					return false
				}
			}
		}
		return true
	}
	f := func(seed int64, alt int8, junk []int8) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := genSpec(rng, "g", 2)
		cfg := &Config{Alt: int(alt)}
		for _, j := range junk {
			cfg.Extents = append(cfg.Extents, int(j))
		}
		cfg.Normalize(spec)
		return walk(spec, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the JSON round trip preserves any normalized config of any
// generated spec.
func TestConfigJSONProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := genSpec(rng, "g", 2)
		cfg := DefaultConfig(spec)
		// Randomize extents then normalize.
		alt := spec.Alt(cfg.Alt)
		for i := range cfg.Extents {
			cfg.Extents[i] = rng.Intn(12)
		}
		_ = alt
		cfg.Normalize(spec)
		data, err := cfg.MarshalJSON()
		if err != nil {
			return false
		}
		back, err := ParseConfig(data)
		if err != nil {
			return false
		}
		return back.Equal(cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

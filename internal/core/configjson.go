package core

import (
	"encoding/json"
	"fmt"
)

// configJSON is the serialized shape of a Config. Configs cross process
// boundaries in two places: operators pin configurations from the command
// line, and the replay tooling stores them in monitoring logs.
type configJSON struct {
	Alt      int                    `json:"alt"`
	Extents  []int                  `json:"extents"`
	Children map[string]*configJSON `json:"children,omitempty"`
}

func toJSON(c *Config) *configJSON {
	if c == nil {
		return nil
	}
	out := &configJSON{Alt: c.Alt, Extents: append([]int(nil), c.Extents...)}
	for k, v := range c.Children {
		if out.Children == nil {
			out.Children = map[string]*configJSON{}
		}
		out.Children[k] = toJSON(v)
	}
	return out
}

func fromJSON(j *configJSON) *Config {
	if j == nil {
		return nil
	}
	out := &Config{Alt: j.Alt, Extents: append([]int(nil), j.Extents...)}
	for k, v := range j.Children {
		out.SetChild(k, fromJSON(v))
	}
	return out
}

// MarshalJSON implements json.Marshaler.
func (c *Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(c))
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Config) UnmarshalJSON(data []byte) error {
	var j configJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("core: config: %w", err)
	}
	*c = *fromJSON(&j)
	return nil
}

// ParseConfig decodes a JSON configuration, e.g.
//
//	{"alt":0,"extents":[3],"children":{"video":{"alt":0,"extents":[1,6,1]}}}
//
// No normalization is applied; pass the result through Normalize (or
// Exec.SetConfig, which normalizes) before use.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dope/internal/queue"
)

// TestTapTraceDeliversAlongsideTrace pins the tap contract: every event the
// WithTrace callback sees is also delivered to each live tap, in the same
// order, and release stops further delivery without disturbing the callback.
func TestTapTraceDeliversAlongsideTrace(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := twoAltDoallSpec(work, &processed)

	var mu sync.Mutex
	var traced, tapped []EventKind
	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}),
		WithTrace(func(ev Event) {
			mu.Lock()
			traced = append(traced, ev.Kind)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	release := e.TapTrace(func(ev Event) {
		mu.Lock()
		tapped = append(tapped, ev.Kind)
		mu.Unlock()
	})

	for i := 0; i < 20; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.SetConfig(&Config{Alt: 0, Extents: []int{4}})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(tapped)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	work.Close()
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(traced) == 0 || len(tapped) == 0 {
		t.Fatalf("no events delivered: trace %d, tap %d", len(traced), len(tapped))
	}
	if len(traced) != len(tapped) {
		t.Fatalf("trace saw %d events, tap saw %d; must be identical streams",
			len(traced), len(tapped))
	}
	for i := range traced {
		if traced[i] != tapped[i] {
			t.Fatalf("event %d: trace %v vs tap %v", i, traced[i], tapped[i])
		}
	}
	release()
	release() // double-release is a no-op
}

// TestTapTraceReleaseStopsDelivery checks that a released tap receives
// nothing from later flushes while a second tap keeps receiving.
func TestTapTraceReleaseStopsDelivery(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := twoAltDoallSpec(work, &processed)

	e, err := New(spec, WithContexts(8),
		WithInitialConfig(&Config{Alt: 0, Extents: []int{2}}))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var a, b int
	releaseA := e.TapTrace(func(Event) { mu.Lock(); a++; mu.Unlock() })
	e.TapTrace(func(Event) { mu.Lock(); b++; mu.Unlock() })

	for i := 0; i < 10; i++ {
		work.Enqueue(i)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	e.SetConfig(&Config{Alt: 0, Extents: []int{3}})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := a
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	releaseA()
	mu.Lock()
	aAtRelease := a
	mu.Unlock()

	// Generate and flush more events after the release.
	e.SetConfig(&Config{Alt: 0, Extents: []int{2}})
	work.Close()
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if aAtRelease == 0 {
		t.Fatal("tap A never saw an event before release")
	}
	if a != aAtRelease {
		t.Errorf("released tap kept receiving: %d -> %d", aAtRelease, a)
	}
	if b <= aAtRelease {
		t.Errorf("surviving tap b=%d did not outpace released tap a=%d", b, aAtRelease)
	}
}

// TestWithRejectedGauge pins that the gauge installed at construction is
// sampled into every Report.
func TestWithRejectedGauge(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := twoAltDoallSpec(work, &processed)
	var rejected uint64 = 7
	e, err := New(spec, WithContexts(4),
		WithRejectedGauge(func() uint64 { return rejected }))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Report().Rejected; got != 7 {
		t.Fatalf("Report.Rejected = %d, want 7", got)
	}
	rejected = 12
	if got := e.Report().Rejected; got != 12 {
		t.Fatalf("Report.Rejected = %d, want 12 after gauge moved", got)
	}
	work.Close()
}

package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stallSpec builds a one-stage PAR nest whose functor consults shouldStall
// on each invocation: a stalling invocation opens its CPU section and then
// blocks — on Worker.Done for cooperative stalls (the goroutine unblocks
// when the watchdog abandons the slot) or on the returned gate channel for
// hard stalls (the goroutine is truly stuck until the test closes the
// gate, modelling a task the runtime cannot reach).
func stallSpec(st StageSpec, shouldStall func() bool, cooperative bool) (*NestSpec, chan struct{}) {
	gate := make(chan struct{})
	mk := func() (*AltInstance, error) {
		return &AltInstance{Stages: []StageFns{{
			Fn: func(w *Worker) Status {
				if w.Begin() == Suspended {
					return Suspended
				}
				if shouldStall() {
					if cooperative {
						<-w.Done() //dopevet:ignore tokenhold stalling inside the window is what the test injects
					} else {
						<-gate //dopevet:ignore tokenhold stalling inside the window is what the test injects
					}
				} else {
					// A touch of real work keeps the window plausible and
					// stops healthy slots from hot-spinning the scheduler
					// into spurious deadline overruns under -race.
					//dopevet:ignore tokenhold simulated work stands in for a CPU-bound body
					time.Sleep(100 * time.Microsecond)
				}
				return w.End()
			},
		}}}, nil
	}
	spec := &NestSpec{Name: "app", Alts: []*AltSpec{
		{
			Name:   "a",
			Stages: []StageSpec{st},
			Make:   func(item any) (*AltInstance, error) { return mk() },
		},
		{
			Name:   "b",
			Stages: []StageSpec{st},
			Make:   func(item any) (*AltInstance, error) { return mk() },
		},
	}}
	return spec, gate
}

// waitForStuck waits until n workers are blocked inside their CPU section
// (holding a platform context): worker spawn (waitForWorkers) only proves
// the goroutine exists, not that its first Begin has landed, and a Stop
// that beats the first Begin drains cleanly with nothing to stall.
func waitForStuck(t *testing.T, e *Exec, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Contexts().Busy() < n {
		if time.Now().After(deadline) {
			t.Fatalf("busy contexts = %d, want >= %d", e.Contexts().Busy(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStallFailStopReportsStack: under FailStop a deadline overrun must
// surface as the run error, carrying the stalled stage's key and a
// goroutine dump, within a couple of deadlines rather than hanging Wait.
func TestStallFailStopReportsStack(t *testing.T) {
	var calls atomic.Int64
	spec, _ := stallSpec(
		StageSpec{Name: "worker", Type: PAR, Deadline: 20 * time.Millisecond, OnFailure: FailStop},
		func() bool { return calls.Add(1) == 1 },
		true,
	)
	e, err := New(spec, WithContexts(2))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- e.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil, want stall error")
		}
		for _, want := range []string{"app/worker", "stalled", "goroutine"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error missing %q:\n%.400s", want, err.Error())
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung on a stalled fail-stop task")
	}
	// "Within 2× the deadline" in spirit; the bound here is loose enough
	// for a loaded CI box but still catches a watchdog that never fires.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("stall detection took %v", el)
	}
	if e.TaskStalls() == 0 {
		t.Fatal("TaskStalls = 0")
	}
}

// TestStallRestartKeepsRunning: under FailRestart the watchdog abandons the
// stalled slot, respawns a replacement, and the application keeps making
// progress; Stop and Wait still work.
func TestStallRestartKeepsRunning(t *testing.T) {
	var calls atomic.Int64
	spec, _ := stallSpec(
		StageSpec{Name: "worker", Type: PAR, Deadline: 10 * time.Millisecond, OnFailure: FailRestart},
		func() bool { return calls.Add(1) == 3 },
		true,
	)
	e, err := New(spec, WithContexts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the stall to be detected and then for fresh iterations to
	// prove the replacement slot works.
	deadline := time.Now().Add(5 * time.Second)
	for e.TaskStalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never detected the stall")
		}
		time.Sleep(time.Millisecond)
	}
	after := e.Report().Nest("app").Stage("worker").Iterations
	for {
		if it := e.Report().Nest("app").Stage("worker").Iterations; it > after+10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress after the stall was abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	rep := e.Report().Nest("app").Stage("worker")
	if rep.Stalls == 0 {
		t.Fatal("report shows no stalls")
	}
}

// TestStallDegradeShrinksExtent: under FailDegrade a stalled slot is
// abandoned and the stage's extent shrinks by one in the live
// configuration, exactly like a panicking slot under the same policy.
func TestStallDegradeShrinksExtent(t *testing.T) {
	var calls atomic.Int64
	// The deadline is generous relative to the functor's ~100µs windows so
	// scheduler hiccups under -race cannot manufacture a second stall — the
	// test asserts exactly one degrade.
	spec, _ := stallSpec(
		StageSpec{Name: "worker", Type: PAR, Deadline: 100 * time.Millisecond, OnFailure: FailDegrade},
		func() bool { return calls.Add(1) == 5 },
		true,
	)
	e, err := New(spec, WithContexts(4), WithInitialConfig(&Config{Extents: []int{3}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.TaskStalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never detected the stall")
		}
		time.Sleep(time.Millisecond)
	}
	for e.CurrentConfig().Extents[0] != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("extent = %d, want 2 after degrade", e.CurrentConfig().Extents[0])
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestDrainTimeoutUnblocksStop is the headline robustness guarantee: a task
// that never returns — it ignores Done, Suspending, everything — no longer
// hangs Stop/Wait when a drain timeout is configured. The slot is abandoned
// (its goroutine leaks until the test releases it) and Wait returns.
func TestDrainTimeoutUnblocksStop(t *testing.T) {
	spec, gate := stallSpec(
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailRestart},
		func() bool { return true },
		false, // hard stall: blocks on the gate, not on Done
	)
	defer close(gate)
	e, err := New(spec, WithContexts(2), WithDrainTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	waitForStuck(t, e, 1)
	e.Stop()
	done := make(chan error, 1)
	go func() { done <- e.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung: drain timeout did not fire")
	}
	rep := e.Report().Nest("app").Stage("worker")
	if rep.StallsDuringDrain == 0 {
		t.Fatal("StallsDuringDrain = 0, want >= 1")
	}
	if rep.Zombies == 0 {
		t.Fatal("Zombies = 0, want the abandoned slot on the gauge")
	}
}

// TestDrainTimeoutUnblocksReconfiguration: the same guarantee for a live
// reconfiguration — an alternative switch whose drain hangs on a stuck task
// completes after the drain timeout and the new alternative runs.
func TestDrainTimeoutUnblocksReconfiguration(t *testing.T) {
	var stuck atomic.Bool
	stuck.Store(true)
	spec, gate := stallSpec(
		StageSpec{Name: "worker", Type: PAR, OnFailure: FailRestart},
		func() bool { return stuck.Load() },
		false,
	)
	defer close(gate)
	e, err := New(spec, WithContexts(2), WithDrainTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	waitForStuck(t, e, 1)
	stuck.Store(false) // only the already-running invocation stays stuck
	e.SetConfig(&Config{Alt: 1, Extents: []int{2}})
	deadline := time.Now().Add(5 * time.Second)
	for e.Report().Nest("app").AltIndex != 1 || e.Report().Nest("app").Stage("worker").Workers != 2 {
		if time.Now().After(deadline) {
			rep := e.Report().Nest("app")
			t.Fatalf("respawn never completed: alt=%d workers=%d",
				rep.AltIndex, rep.Stage("worker").Workers)
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestZombieLateEndAccounting pins the generation/fence semantics of an
// abandoned slot with the platform pool at its tightest (one context): the
// watchdog must reclaim the stalled slot's token so the replacement can
// run, and the zombie's late End — racing live traffic under -race — must
// neither double-release the token (platform.Contexts panics on overflow)
// nor feed the monitors a phantom iteration.
func TestZombieLateEndAccounting(t *testing.T) {
	hold := make(chan struct{})
	var calls atomic.Int64
	spec, _ := stallSpec(
		StageSpec{Name: "worker", Type: PAR, Deadline: 15 * time.Millisecond, OnFailure: FailRestart},
		func() bool { return false }, true,
	)
	// Replace the functor with one whose first invocation hard-blocks on
	// hold inside its CPU section.
	mk := spec.Alts[0].Make
	spec.Alts[0].Make = func(item any) (*AltInstance, error) {
		inst, err := mk(item)
		if err != nil {
			return nil, err
		}
		inst.Stages[0].Fn = func(w *Worker) Status {
			if w.Begin() == Suspended {
				return Suspended
			}
			if calls.Add(1) == 1 {
				//dopevet:ignore tokenhold the test wedges a worker on purpose to exercise the watchdog
				<-hold // stuck holding the only context
			}
			return w.End()
		}
		return inst, nil
	}
	e, err := New(spec, WithContexts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// The replacement slot can only iterate if the watchdog reclaimed the
	// zombie's token.
	deadline := time.Now().Add(5 * time.Second)
	for e.TaskStalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall never detected")
		}
		time.Sleep(time.Millisecond)
	}
	base := e.Report().Nest("app").Stage("worker").Iterations
	for e.Report().Nest("app").Stage("worker").Iterations <= base+20 {
		if time.Now().After(deadline) {
			t.Fatal("replacement slot made no progress: token not reclaimed")
		}
		time.Sleep(time.Millisecond)
	}

	// Release the zombie mid-traffic: its late End races live Begin/End
	// pairs on the same group and must be a no-op for tokens and monitors.
	iterBefore := e.Report().Nest("app").Stage("worker").Iterations
	close(hold)
	for e.Report().Nest("app").Stage("worker").Zombies != 0 {
		if time.Now().After(deadline) {
			t.Fatal("zombie never exited after release")
		}
		time.Sleep(time.Millisecond)
	}
	if it := e.Report().Nest("app").Stage("worker").Iterations; it < iterBefore {
		t.Fatalf("iterations went backwards: %d -> %d", iterBefore, it)
	}
	e.Stop()
	if err := e.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if busy := e.Contexts().Busy(); busy != 0 {
		t.Fatalf("busy contexts = %d after Wait, token accounting corrupted", busy)
	}
}

// TestDrainTimeoutRacingStop sweeps a concurrent Stop across the
// drain-timeout escalation window: whichever side abandons the stuck slot
// first, Wait must return and the accounting must settle exactly once.
func TestDrainTimeoutRacingStop(t *testing.T) {
	start := time.Now()
	for i := 0; i < 200 && time.Since(start) < 3*time.Second; i++ {
		spec, gate := stallSpec(
			StageSpec{Name: "worker", Type: PAR, OnFailure: FailRestart},
			func() bool { return true },
			false,
		)
		e, err := New(spec, WithContexts(2),
			WithDrainTimeout(time.Duration(1+i%5)*time.Millisecond),
			WithStallCheckInterval(500*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		// Force a suspension via an alt switch, then race Stop against the
		// expiring drain timeout.
		go e.SetConfig(&Config{Alt: 1, Extents: []int{1}})
		for n := 0; n < i%64; n++ {
			_ = time.Now()
		}
		e.Stop()
		done := make(chan error, 1)
		go func() { done <- e.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: Wait returned %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: Wait hung", i)
		}
		close(gate)
	}
}

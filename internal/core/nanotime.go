package core

import _ "unsafe" // for go:linkname

// nanotime reads the runtime's raw monotonic clock. The Begin/End hot path
// takes two timestamps per iteration, and on the machines the executive
// targets the clock read itself is the single largest cost of a monitored
// section; going through time.Now (wall + monotonic) or even time.Since
// (monotonic plus a time.Time construction and flag checks) adds measurable
// overhead on top of the kernel's clock_gettime. Linking the runtime's
// monotonic reader directly is the established escape hatch (it is on the
// linker's sanctioned list) and gives a bare nanosecond counter the executive
// anchors to a wall-clock epoch captured at construction.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64

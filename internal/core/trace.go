package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// traceShards fixes the fan-out of the event buffer. Eight matches the
// context-pool sharding: enough that concurrent emitters (worker groups,
// the watchdog, install callers) rarely collide on a ring lock, few enough
// that an empty flush is a handful of uncontended lock/unlock pairs.
const traceShards = 8

// tracedEvent pairs an Event with its global emission sequence number; the
// flusher uses the sequence to restore total emission order across shards.
type tracedEvent struct {
	seq uint64
	ev  Event
}

// traceRing is one shard of the event buffer: a mutex-guarded batch that
// emitters append to and the flusher swaps out. The slice keeps its
// capacity across flushes, so a warmed-up ring enqueues without allocating.
// Padded so two rings never share a cache line.
type traceRing struct {
	mu  sync.Mutex
	buf []tracedEvent
	_   [32]byte
}

// traceBuf decouples event emission from event delivery. Emitters stamp the
// event (Time at enqueue), take a global sequence number, and append to one
// ring — a few tens of nanoseconds, never blocking on the user's trace
// callback. A single flusher (the control tick, the watchdog tick, drain
// boundaries, and the final flush before Done) collects every ring, merges
// by sequence number, and delivers strictly in emission order.
//
// Delivery order is exact, not best-effort: the flusher refuses to deliver
// past a gap in the sequence. A gap means some emitter has taken a number
// but not yet finished its append; the held-back suffix is retained and
// delivered by the next flush, by which point the straggler's append (a few
// instructions) has long completed. The final flush spins the collection a
// few times so a straggler caught mid-enqueue at shutdown still gets out.
type traceBuf struct {
	seq    atomic.Uint64
	cut    atomic.Uint64 // first sequence number flushFinal refuses (0 = open)
	shards [traceShards]traceRing

	flushMu sync.Mutex    // serializes delivery; protects the fields below
	next    uint64        // next sequence number to deliver
	held    []tracedEvent // sorted suffix held back behind a sequence gap
}

// enqueue buffers ev for ordered delivery by the next flush. Once flushFinal
// has drawn its cut, later sequence numbers are dropped immediately: they
// raced the caller's return from Wait and must not hold the final flush open
// (or leave a permanent gap that would stall delivery).
func (t *traceBuf) enqueue(ev Event) {
	s := t.seq.Add(1)
	if c := t.cut.Load(); c != 0 && s >= c {
		return
	}
	r := &t.shards[s%traceShards]
	r.mu.Lock()
	r.buf = append(r.buf, tracedEvent{seq: s, ev: ev})
	r.mu.Unlock()
}

// flush delivers every buffered event to deliver, in emission order. Safe
// to call from any goroutine; concurrent flushes serialize.
func (t *traceBuf) flush(deliver func(Event)) {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	t.collectAndDeliver(deliver)
}

// flushFinal is flush for shutdown. It draws a cut at the current sequence
// number: every event that took a number at or below the cut — a stall or
// failure emit already in flight when the last drain finished, say — is
// guaranteed delivery, in order, before Wait returns; events numbered after
// the cut are dropped at enqueue, matching the pre-buffering behavior where
// such a callback raced the caller's return from Wait anyway.
//
// The loop re-collects until every pre-cut number has been delivered. This
// replaces a bounded multi-pass sweep, which had a termination condition
// with two failure modes: a straggler preempted mid-enqueue for more than a
// few scheduler yields had its event (and every held-back event sequenced
// behind the gap) silently dropped, and a steady stream of post-flush
// emitters could keep seq ahead of next so the sweep always used all its
// passes. The cut bounds the wait by construction — each pre-cut emitter is
// already inside enqueue, a few instructions from completing its append —
// while post-cut emitters can no longer extend the flush.
func (t *traceBuf) flushFinal(deliver func(Event)) {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	cut := t.seq.Load()
	t.cut.Store(cut + 1)
	for {
		t.collectAndDeliver(deliver)
		if t.next > cut {
			return
		}
		runtime.Gosched() // let a pre-cut straggler finish its append
	}
}

// collectAndDeliver drains the rings into the held buffer and delivers the
// gap-free prefix. Caller holds flushMu.
func (t *traceBuf) collectAndDeliver(deliver func(Event)) {
	if t.next == 0 {
		t.next = 1
	}
	batch := t.held
	for i := range t.shards {
		r := &t.shards[i]
		r.mu.Lock()
		batch = append(batch, r.buf...)
		r.buf = r.buf[:0]
		r.mu.Unlock()
	}
	if len(batch) == 0 {
		t.held = batch
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	n := 0
	for n < len(batch) && batch[n].seq == t.next {
		t.next++
		n++
	}
	for i := 0; i < n; i++ {
		deliver(batch[i].ev)
	}
	// Keep the held-back suffix (if any) without aliasing the delivered
	// prefix, and drop large one-off batches so a burst does not pin its
	// capacity forever.
	rest := batch[n:]
	if cap(batch) > 1024 {
		t.held = append([]tracedEvent(nil), rest...)
		return
	}
	copy(batch, rest)
	t.held = batch[:len(rest)]
}

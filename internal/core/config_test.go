package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// transcodeSpec builds the canonical two-level x264-like spec used across
// the core tests: an outer PAR loop over videos nesting a choice between a
// 3-stage pipeline and a fused sequential alternative.
func transcodeSpec() *NestSpec {
	inner := &NestSpec{Name: "video", Alts: []*AltSpec{
		leafAlt("pipeline",
			StageSpec{Name: "read", Type: SEQ},
			StageSpec{Name: "transform", Type: PAR, MinDoP: 2, MaxDoP: 16},
			StageSpec{Name: "write", Type: SEQ}),
		leafAlt("fused", StageSpec{Name: "all", Type: SEQ}),
	}}
	return &NestSpec{Name: "app", Alts: []*AltSpec{
		leafAlt("outer", StageSpec{Name: "transcode", Type: PAR, Nest: inner}),
	}}
}

func TestDefaultConfig(t *testing.T) {
	spec := transcodeSpec()
	cfg := DefaultConfig(spec)
	if cfg.Alt != 0 || len(cfg.Extents) != 1 || cfg.Extents[0] != 1 {
		t.Fatalf("root default = %v", cfg)
	}
	child := cfg.Child("video")
	if child == nil {
		t.Fatal("missing child config")
	}
	if len(child.Extents) != 3 || child.Extents[0] != 1 || child.Extents[1] != 1 {
		t.Fatalf("child default = %v", child)
	}
}

func TestCloneIsDeep(t *testing.T) {
	spec := transcodeSpec()
	cfg := DefaultConfig(spec)
	cp := cfg.Clone()
	cp.Extents[0] = 99
	cp.Child("video").Extents[1] = 42
	if cfg.Extents[0] == 99 || cfg.Child("video").Extents[1] == 42 {
		t.Fatal("clone aliases original")
	}
	if (*Config)(nil).Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestEqual(t *testing.T) {
	spec := transcodeSpec()
	a := DefaultConfig(spec)
	b := DefaultConfig(spec)
	if !a.Equal(b) {
		t.Fatal("identical configs unequal")
	}
	b.Child("video").Extents[1] = 4
	if a.Equal(b) {
		t.Fatal("differing configs equal")
	}
	b2 := DefaultConfig(spec)
	b2.Alt = 0
	b2.Extents[0] = 3
	if a.Equal(b2) {
		t.Fatal("differing root extents equal")
	}
	if a.Equal(nil) || !(*Config)(nil).Equal(nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestNormalize(t *testing.T) {
	spec := transcodeSpec()
	cfg := &Config{Alt: 7, Extents: []int{0}}
	cfg.Normalize(spec)
	if cfg.Alt != 0 {
		t.Fatalf("alt = %d", cfg.Alt)
	}
	if cfg.Extents[0] != 1 {
		t.Fatalf("extent = %d", cfg.Extents[0])
	}
	child := cfg.Child("video")
	if child == nil {
		t.Fatal("normalize should materialize children")
	}
	// SEQ stages clamp to 1, PAR clamps to MaxDoP.
	child.Extents = []int{9, 100, 9}
	child.Alt = 0
	cfg.Normalize(spec)
	child = cfg.Child("video")
	if child.Extents[0] != 1 || child.Extents[1] != 16 || child.Extents[2] != 1 {
		t.Fatalf("child extents = %v", child.Extents)
	}
}

func TestNormalizeResizesExtents(t *testing.T) {
	spec := transcodeSpec()
	cfg := &Config{Alt: 0, Extents: nil}
	cfg.SetChild("video", &Config{Alt: 0, Extents: []int{1}})
	cfg.Normalize(spec)
	if len(cfg.Extents) != 1 {
		t.Fatalf("root extents = %v", cfg.Extents)
	}
	if got := len(cfg.Child("video").Extents); got != 3 {
		t.Fatalf("child extents length = %d", got)
	}
}

func TestDemand(t *testing.T) {
	spec := transcodeSpec()

	// <(24, DOALL), (1, SEQ-fused)> occupies 24 contexts.
	cfg := &Config{Alt: 0, Extents: []int{24}}
	cfg.SetChild("video", &Config{Alt: 1, Extents: []int{1}})
	if got := Demand(spec, cfg); got != 24 {
		t.Fatalf("demand = %d, want 24", got)
	}

	// <(3, DOALL), (8, PIPE)> with pipeline extents 1+6+1 occupies 24.
	cfg2 := &Config{Alt: 0, Extents: []int{3}}
	cfg2.SetChild("video", &Config{Alt: 0, Extents: []int{1, 6, 1}})
	if got := Demand(spec, cfg2); got != 24 {
		t.Fatalf("demand = %d, want 24", got)
	}

	// Nil config uses defaults: 1 outer × (1+1+1) pipeline = 3.
	if got := Demand(spec, nil); got != 3 {
		t.Fatalf("default demand = %d, want 3", got)
	}
}

func TestConfigString(t *testing.T) {
	spec := transcodeSpec()
	cfg := DefaultConfig(spec)
	s := cfg.String()
	if !strings.Contains(s, "video:") || !strings.Contains(s, "extents=") {
		t.Fatalf("string = %q", s)
	}
	if (*Config)(nil).String() != "<nil>" {
		t.Fatal("nil string wrong")
	}
}

func TestExtentOutOfRange(t *testing.T) {
	cfg := &Config{Extents: []int{5}}
	if cfg.Extent(0) != 5 || cfg.Extent(1) != 1 || cfg.Extent(-1) != 1 {
		t.Fatal("Extent bounds handling wrong")
	}
	if (*Config)(nil).Extent(0) != 1 {
		t.Fatal("nil config extent should be 1")
	}
	if (*Config)(nil).Child("x") != nil {
		t.Fatal("nil config child should be nil")
	}
}

// Property: Normalize is idempotent and Clone preserves equality.
func TestNormalizeIdempotentProperty(t *testing.T) {
	spec := transcodeSpec()
	f := func(alt int8, e0, e1, e2, outer int8) bool {
		cfg := &Config{Alt: int(alt), Extents: []int{int(outer)}}
		cfg.SetChild("video", &Config{Alt: int(alt) % 2, Extents: []int{int(e0), int(e1), int(e2)}})
		cfg.Normalize(spec)
		once := cfg.Clone()
		cfg.Normalize(spec)
		return cfg.Equal(once) && once.Equal(once.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Normalize, Demand is at least 1 and every extent respects
// stage bounds.
func TestNormalizedDemandProperty(t *testing.T) {
	spec := transcodeSpec()
	f := func(alt int8, outer uint8, inner uint8) bool {
		cfg := &Config{Alt: int(alt), Extents: []int{int(outer)}}
		cfg.SetChild("video", &Config{Alt: int(alt) % 2, Extents: []int{1, int(inner), 1}})
		cfg.Normalize(spec)
		d := Demand(spec, cfg)
		if d < 1 {
			return false
		}
		child := cfg.Child("video")
		if child.Alt == 0 && (child.Extents[1] < 1 || child.Extents[1] > 16) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

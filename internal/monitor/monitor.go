// Package monitor aggregates the application features DoPE observes while a
// program runs: per-task execution time (measured between Task.Begin and
// Task.End), per-task throughput, iteration counts, and the load reported by
// each task's LoadCB. Mechanisms consume these aggregates through the query
// API of core.Report (the paper's DoPE::getExecTime / DoPE::getLoad).
//
// Stage instances come and go (an inner pipeline lives only as long as its
// parent's current work item), so the monitor separates durable per-stage
// aggregates, keyed by "nest/stage", from a registry of live LoadCB
// callbacks that is polled on demand.
package monitor

import (
	"sync"
	"time"

	"dope/internal/stats"
)

// Key identifies a stage across instantiations.
type Key struct {
	Nest  string
	Stage string
}

// StageStats is the durable aggregate for one stage.
type StageStats struct {
	mu         sync.Mutex
	execTime   *stats.EWMA // seconds per iteration, CPU section only
	iterations uint64
	completed  uint64 // instances that ran to Finished
	lastAt     time.Time
	rate       *stats.EWMA // iterations/sec from inter-completion gaps
	execSum    float64

	// Idle accounting for the rate EWMA. Rate measures how fast the stage
	// completes iterations while it is actually working; time the live
	// workers spend with no Begin/End window open (blocked on an empty
	// queue, waiting for sparse input) is idleness of the *workload*, not
	// slowness of the stage, and must not be folded into the
	// inter-completion gaps. open counts currently-open windows across the
	// stage's workers; idleSince marks when open last dropped to zero; the
	// accrued idle time since the previous completion is subtracted from
	// the next gap.
	open      int
	idleSince time.Time
	idleAccum time.Duration

	// Worker-slot lifecycle, maintained by the executive's stage worker
	// groups. With in-place resizing the configured extent and the number
	// of workers actually iterating can briefly diverge (retiring slots
	// finish their current iteration; fresh slots are still warming up), so
	// mechanisms that normalize Rate or Load per worker should divide by
	// Workers(), the live gauge, not by the configured extent.
	workers int    // live worker slots (includes slots draining a retirement)
	spawned uint64 // slots ever started
	retired uint64 // slots that exited because a shrink retired them
	resizes uint64 // in-place extent changes applied to the stage

	// Failure accounting, maintained by the executive's failure policies:
	// total functor panics absorbed, and the streak since the stage last
	// completed an iteration (reset by ObserveIteration).
	failures   uint64
	consecFail int

	// Stall accounting, maintained by the executive's watchdog: deadline
	// overruns detected (split out for drain-time stalls), live zombie
	// slots (abandoned by the watchdog but whose goroutine has not exited),
	// and shed items carried over from retired queue instances (see
	// RegisterShed).
	stalls      uint64
	stallsDrain uint64
	zombies     int
	shedPast    uint64
}

func newStageStats(alpha float64) *StageStats {
	return &StageStats{
		execTime: stats.NewEWMA(alpha),
		rate:     stats.NewEWMA(alpha),
	}
}

// ObserveBegin records that a worker opened a Begin/End window at now: the
// stage is working again, so any idle stretch that just ended is banked for
// the next completion's gap correction.
func (s *StageStats) ObserveBegin(now time.Time) {
	s.mu.Lock()
	if s.open == 0 && !s.idleSince.IsZero() {
		if idle := now.Sub(s.idleSince); idle > 0 {
			s.idleAccum += idle
		}
		s.idleSince = time.Time{}
	}
	s.open++
	s.mu.Unlock()
}

// ObserveEnd records that a worker closed its Begin/End window at now; when
// it was the last open window, the stage is idle from now on.
func (s *StageStats) ObserveEnd(now time.Time) {
	s.mu.Lock()
	if s.open > 0 {
		s.open--
	}
	if s.open == 0 {
		s.idleSince = now
	}
	s.mu.Unlock()
}

// ObserveIteration records one Begin..End section of d at time now. The
// rate observation uses the inter-completion gap minus the idle time banked
// by ObserveBegin/ObserveEnd, so the first completion after a quiet spell
// reflects how fast the stage works, not how long it waited for input.
func (s *StageStats) ObserveIteration(d time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := d.Seconds()
	s.execTime.Observe(sec)
	s.execSum += sec
	s.iterations++
	s.consecFail = 0
	if !s.lastAt.IsZero() {
		gap := (now.Sub(s.lastAt) - s.idleAccum).Seconds()
		if gap > 0 {
			s.rate.Observe(1 / gap)
		}
	}
	s.idleAccum = 0
	s.lastAt = now
}

// ObserveInstanceDone records that one instance of the stage finished.
func (s *StageStats) ObserveInstanceDone() {
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
}

// ObserveWorkerStart records that a worker slot began iterating the stage.
func (s *StageStats) ObserveWorkerStart() {
	s.mu.Lock()
	s.workers++
	s.spawned++
	s.mu.Unlock()
}

// ObserveWorkerExit records that a worker slot exited; retired says whether
// the exit was a shrink retiring the slot (as opposed to the stage
// finishing or the nest suspending). The live gauge drops either way, and
// lastAt is cleared when the stage goes idle so the rate EWMA does not
// manufacture a huge inter-completion gap (and hence a near-zero rate
// observation) from a retirement pause when iterations resume.
func (s *StageStats) ObserveWorkerExit(retired bool) {
	s.mu.Lock()
	if s.workers > 0 {
		s.workers--
	}
	if retired {
		s.retired++
	}
	if s.workers == 0 {
		s.resetGapLocked()
	}
	s.mu.Unlock()
}

// resetGapLocked clears the inter-completion gap state when the stage has
// no live workers: the next completion starts a fresh rate history instead
// of deriving a gap from before the pause.
func (s *StageStats) resetGapLocked() {
	s.lastAt = time.Time{}
	s.idleSince = time.Time{}
	s.idleAccum = 0
	s.open = 0
}

// ObserveFailure records one functor panic absorbed by the stage and
// returns the consecutive-failure count — the streak since the stage last
// completed an iteration.
func (s *StageStats) ObserveFailure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures++
	s.consecFail++
	return s.consecFail
}

// Failures returns how many functor panics the stage has absorbed.
func (s *StageStats) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// ConsecutiveFailures returns the failure streak since the stage last
// completed an iteration.
func (s *StageStats) ConsecutiveFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.consecFail
}

// ObserveStall records one deadline overrun detected by the watchdog;
// duringDrain says whether the run was draining for a reconfiguration or
// Stop when the stall was detected.
func (s *StageStats) ObserveStall(duringDrain bool) {
	s.mu.Lock()
	s.stalls++
	if duringDrain {
		s.stallsDrain++
	}
	s.mu.Unlock()
}

// ObserveAbandon records that the watchdog abandoned a stalled worker slot:
// the live gauge drops (the slot no longer counts toward the stage's
// capacity) and the zombie gauge rises until the stuck goroutine, if it
// ever unblocks, exits. As with ObserveWorkerExit, lastAt is cleared when
// the stage goes idle.
func (s *StageStats) ObserveAbandon() {
	s.mu.Lock()
	if s.workers > 0 {
		s.workers--
	}
	s.zombies++
	// The abandoned slot's window was open (that is what stalled); close it
	// here since its late End, if any, stays invisible to the monitors. The
	// moment idleness began is unknown, so no idle stretch is banked until
	// the next window opens.
	if s.open > 0 {
		s.open--
	}
	if s.workers == 0 {
		s.resetGapLocked()
	}
	s.mu.Unlock()
}

// ObserveZombieExit records that an abandoned slot's goroutine finally
// exited; only the zombie gauge cares — all other accounting for the slot
// was settled at abandonment.
func (s *StageStats) ObserveZombieExit() {
	s.mu.Lock()
	if s.zombies > 0 {
		s.zombies--
	}
	s.mu.Unlock()
}

// Stalls returns how many deadline overruns the watchdog has detected.
func (s *StageStats) Stalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

// StallsDuringDrain returns how many of the stage's stalls were detected
// while the run was draining.
func (s *StageStats) StallsDuringDrain() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stallsDrain
}

// Zombies returns the live count of abandoned-but-not-yet-exited slots.
func (s *StageStats) Zombies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.zombies
}

// addShedPast folds the final shed total of a retired queue instance into
// the durable aggregate.
func (s *StageStats) addShedPast(n uint64) {
	s.mu.Lock()
	s.shedPast += n
	s.mu.Unlock()
}

func (s *StageStats) shedPastTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedPast
}

// ObserveResize records one in-place extent change applied to the stage.
func (s *StageStats) ObserveResize() {
	s.mu.Lock()
	s.resizes++
	s.mu.Unlock()
}

// Workers returns the live worker-slot gauge.
func (s *StageStats) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// Spawned returns how many worker slots have ever started.
func (s *StageStats) Spawned() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawned
}

// Retired returns how many worker slots were retired by shrinks.
func (s *StageStats) Retired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

// Resizes returns how many in-place extent changes the stage has absorbed.
func (s *StageStats) Resizes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resizes
}

// ExecTime returns the smoothed per-iteration CPU time in seconds.
func (s *StageStats) ExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execTime.Value()
}

// MeanExecTime returns the lifetime mean per-iteration CPU time in seconds.
func (s *StageStats) MeanExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.iterations == 0 {
		return 0
	}
	return s.execSum / float64(s.iterations)
}

// Rate returns the smoothed iteration completion rate (iterations/sec,
// summed over all concurrent instances of the stage).
func (s *StageStats) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate.Value()
}

// Iterations returns the total number of observed iterations.
func (s *StageStats) Iterations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.iterations
}

// Completed returns how many stage instances have finished.
func (s *StageStats) Completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Registry is the process-wide monitor. Safe for concurrent use.
type Registry struct {
	alpha float64

	mu     sync.Mutex
	stages map[Key]*StageStats
	loads  map[Key]map[int64]func() float64 // live LoadCBs by instance id
	sheds  map[Key]map[int64]func() uint64  // live shed counters by instance id
	nextID int64
}

// NewRegistry returns a registry whose EWMAs use the given alpha.
func NewRegistry(alpha float64) *Registry {
	return &Registry{
		alpha:  alpha,
		stages: make(map[Key]*StageStats),
		loads:  make(map[Key]map[int64]func() float64),
		sheds:  make(map[Key]map[int64]func() uint64),
	}
}

// Stage returns (creating if needed) the aggregate for key.
func (r *Registry) Stage(key Key) *StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[key]
	if !ok {
		s = newStageStats(r.alpha)
		r.stages[key] = s
	}
	return s
}

// RegisterLoad registers a live LoadCB for key and returns a handle to
// unregister it when the instance ends. A nil cb registers nothing and
// returns a no-op release.
func (r *Registry) RegisterLoad(key Key, cb func() float64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.loads[key]
	if !ok {
		m = make(map[int64]func() float64)
		r.loads[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if m, ok := r.loads[key]; ok {
			delete(m, id)
		}
		r.mu.Unlock()
	}
}

// RegisterShed registers a live shed counter (typically Queue.Shed of the
// stage's in-queue) for key and returns a handle to unregister it when the
// instance ends. Unlike load, shed is cumulative: the release folds the
// counter's final value into the stage's durable aggregate so Shed never
// goes backwards across reconfigurations. A nil cb registers nothing.
func (r *Registry) RegisterShed(key Key, cb func() uint64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.sheds[key]
	if !ok {
		m = make(map[int64]func() uint64)
		r.sheds[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		live := false
		if m, ok := r.sheds[key]; ok {
			if _, live = m[id]; live {
				delete(m, id)
			}
		}
		r.mu.Unlock()
		if live {
			r.Stage(key).addShedPast(cb())
		}
	}
}

// Shed returns the stage's cumulative shed-item count: retired instances'
// totals plus the live counters.
func (r *Registry) Shed(key Key) uint64 {
	r.mu.Lock()
	cbs := make([]func() uint64, 0, 4)
	for _, cb := range r.sheds[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	total := r.Stage(key).shedPastTotal()
	for _, cb := range cbs {
		total += cb()
	}
	return total
}

// Load polls all live LoadCBs for key and returns their sum (total items
// waiting for the stage) and how many instances reported.
func (r *Registry) Load(key Key) (total float64, instances int) {
	r.mu.Lock()
	cbs := make([]func() float64, 0, 4)
	for _, cb := range r.loads[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	for _, cb := range cbs {
		total += cb()
	}
	return total, len(cbs)
}

// Keys returns all stage keys ever observed, in unspecified order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Key, 0, len(r.stages))
	for k := range r.stages {
		out = append(out, k)
	}
	return out
}

// Reset clears all aggregates and live load registrations; used between
// experiment runs that share a runtime.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stages = make(map[Key]*StageStats)
	r.loads = make(map[Key]map[int64]func() float64)
	r.sheds = make(map[Key]map[int64]func() uint64)
}

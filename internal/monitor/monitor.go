// Package monitor aggregates the application features DoPE observes while a
// program runs: per-task execution time (measured between Task.Begin and
// Task.End), per-task throughput, iteration counts, and the load reported by
// each task's LoadCB. Mechanisms consume these aggregates through the query
// API of core.Report (the paper's DoPE::getExecTime / DoPE::getLoad).
//
// Stage instances come and go (an inner pipeline lives only as long as its
// parent's current work item), so the monitor separates durable per-stage
// aggregates, keyed by "nest/stage", from a registry of live LoadCB
// callbacks that is polled on demand.
//
// The per-task path is deliberately lock-free. Each worker slot owns a
// SlotRecorder — a padded accumulator struct written only by that worker —
// and the stage-wide idle state (how many Begin/End windows are open, and
// since when none are) lives in three shared atomics. A fold, run under the
// stage mutex by the control-loop tick and by every locked getter or
// slow-path observer, drains the accumulators into the EWMAs using
// watermarks, so Report() keeps its exact meaning (including the idle-rate
// correction) while ObserveBegin/End on the worker path cost a handful of
// atomic operations instead of three mutex sections. See DESIGN.md for the
// memory-ordering invariants.
package monitor

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dope/internal/stats"
)

// Key identifies a stage across instantiations.
type Key struct {
	Nest  string
	Stage string
}

// noTime marks an unset nanosecond timestamp. Zero is not usable as the
// sentinel: virtual clocks in tests legitimately produce time.Unix(0, 0).
const noTime = math.MinInt64

// StageStats is the durable aggregate for one stage.
type StageStats struct {
	// Idle accounting for the rate EWMA, shared by all of the stage's
	// worker slots and therefore atomic. Rate measures how fast the stage
	// completes iterations while it is actually working; time the live
	// workers spend with no Begin/End window open (blocked on an empty
	// queue, waiting for sparse input) is idleness of the *workload*, not
	// slowness of the stage, and must not be folded into the
	// inter-completion gaps. open counts currently-open windows across the
	// stage's workers; lastEnd is the newest window close (in UnixNano), so
	// when open is zero it is also the moment the stage went idle; idleAccum
	// banks the accrued idle nanoseconds, which the next completion's fold
	// subtracts from its gap. Every ObserveEnd stores lastEnd *before* its
	// open decrement, so the Begin whose increment raises open from zero is
	// guaranteed to read an end-time no older than the close that emptied
	// the stage — that pairing is what keeps each banked idle stretch exact
	// without a lock.
	open       atomic.Int32
	lastEnd    atomic.Int64 // UnixNano of the newest window close; noTime if none
	idleAccum  atomic.Int64 // banked idle nanos awaiting the next completion
	firstBegin atomic.Int64 // UnixNano of the first window open since reset; noTime if none
	_          [32]byte     // keep the hot atomics off the mutex's cache line

	mu   sync.Mutex
	recs []*SlotRecorder // live per-slot accumulators, drained by foldLocked

	execTime    *stats.EWMA // seconds per iteration, CPU section only
	iterations  uint64
	completed   uint64      // instances that ran to Finished
	lastAtNanos int64       // UnixNano of the newest folded completion; noTime if none
	rate        *stats.EWMA // iterations/sec from inter-completion gaps
	execSum     float64

	// Worker-slot lifecycle, maintained by the executive's stage worker
	// groups. With in-place resizing the configured extent and the number
	// of workers actually iterating can briefly diverge (retiring slots
	// finish their current iteration; fresh slots are still warming up), so
	// mechanisms that normalize Rate or Load per worker should divide by
	// Workers(), the live gauge, not by the configured extent.
	workers int    // live worker slots (includes slots draining a retirement)
	spawned uint64 // slots ever started
	retired uint64 // slots that exited because a shrink retired them
	resizes uint64 // in-place extent changes applied to the stage

	// Failure accounting, maintained by the executive's failure policies:
	// total functor panics absorbed, and the streak since the stage last
	// completed an iteration (reset by a folded or observed completion).
	failures   uint64
	consecFail int

	// Stall accounting, maintained by the executive's watchdog: deadline
	// overruns detected (split out for drain-time stalls), live zombie
	// slots (abandoned by the watchdog but whose goroutine has not exited),
	// and shed items carried over from retired queue instances (see
	// RegisterShed).
	stalls      uint64
	stallsDrain uint64
	zombies     int
	shedPast    uint64
}

func newStageStats(alpha float64) *StageStats {
	s := &StageStats{
		execTime: stats.NewEWMA(alpha),
		rate:     stats.NewEWMA(alpha),
	}
	s.lastAtNanos = noTime
	s.lastEnd.Store(noTime)
	s.firstBegin.Store(noTime)
	return s
}

// SlotRecorder is one worker slot's private accumulator. The owning worker
// is the only writer of the producer fields; the stage fold reads them with
// atomic loads and tracks how much it has already consumed in the watermark
// fields, which only the fold (under the stage mutex) touches. The struct
// is padded so two slots' accumulators never share a cache line.
type SlotRecorder struct {
	s *StageStats

	// Producer fields, written only by the owning worker. The write order
	// in ObserveEnd — execSum and the stage's lastEnd before iters — is
	// load-bearing: a fold that reads iters first (and lastEnd after) is
	// guaranteed to see the end-time of every completion it counts.
	execSum atomic.Int64 // total CPU-section nanos
	iters   atomic.Uint64

	// Fold watermarks, owned by the consumer under s.mu.
	foldedIters uint64
	foldedExec  int64

	_ [24]byte // round the struct up to a full cache line
}

// NewSlotRecorder registers and returns a fresh accumulator for one worker
// slot. The caller must Release it when the slot's attempt ends so the
// final partial batch is folded and the slot stops being scanned.
func (s *StageStats) NewSlotRecorder() *SlotRecorder {
	rec := &SlotRecorder{s: s}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
	return rec
}

// Release folds the recorder's remaining accumulation and unregisters it.
func (rec *SlotRecorder) Release() {
	s := rec.s
	s.mu.Lock()
	s.foldLocked()
	for i, r := range s.recs {
		if r == rec {
			s.recs = append(s.recs[:i], s.recs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// ObserveBegin records that the slot's worker opened a Begin/End window at
// now (UnixNano): the stage is working again, so any idle stretch that just
// ended is banked for the next completion's gap correction. Lock-free.
func (rec *SlotRecorder) ObserveBegin(nowNanos int64) {
	rec.s.beginAtomic(nowNanos)
}

// ObserveEnd records one completed Begin..End section of dur nanoseconds
// ending at now (UnixNano). It replaces the locked ObserveIteration +
// ObserveEnd pair on the worker path: the iteration lands in the slot's
// accumulator for the next fold, and the idle state updates atomically.
func (rec *SlotRecorder) ObserveEnd(durNanos, nowNanos int64) {
	rec.execSum.Add(durNanos)
	rec.s.lastEnd.Store(nowNanos)
	rec.iters.Add(1)
	rec.s.open.Add(-1)
}

// beginAtomic is the shared open/idle transition for a window opening: the
// increment that wakes an idle stage banks the idle stretch since the close
// that emptied it. Before any window has closed there is no idle stretch to
// bank; instead the very first open seeds firstBegin, the gap origin the
// first fold's rate observation anchors to (without it the whole first batch
// of completions would make no rate observation at all, and a mechanism or
// profiler reading Rate() before the second control tick would see 0 — an
// "infinitely fast" stage by the demand math).
func (s *StageStats) beginAtomic(nowNanos int64) {
	if s.open.Add(1) == 1 {
		if le := s.lastEnd.Load(); le != noTime && nowNanos > le {
			s.idleAccum.Add(nowNanos - le)
		} else if le == noTime {
			s.firstBegin.CompareAndSwap(noTime, nowNanos)
		}
	}
}

// endAtomic is the shared open/idle transition for a window closing.
func (s *StageStats) endAtomic(nowNanos int64) {
	s.lastEnd.Store(nowNanos)
	s.open.Add(-1)
}

// foldLocked drains every live slot accumulator into the durable aggregate.
// Callers hold s.mu. The batch of k new completions updates the EWMAs as k
// observations of the batch mean (see stats.EWMA.ObserveBatch): for k == 1
// — every fold triggered by a getter right after a completion, and all
// test-driven sequences — this is bit-for-bit the per-iteration update; for
// larger batches it is the same estimator at tick granularity. The rate
// observation subtracts the idle time banked since the previous folded
// completion, preserving the idle-rate correction.
func (s *StageStats) foldLocked() {
	var k uint64
	var execDelta int64
	for _, rec := range s.recs {
		it := rec.iters.Load() // before the stage's lastEnd: see SlotRecorder ordering
		if d := it - rec.foldedIters; d > 0 {
			rec.foldedIters = it
			k += d
		}
		if ex := rec.execSum.Load(); ex != rec.foldedExec {
			execDelta += ex - rec.foldedExec
			rec.foldedExec = ex
		}
	}
	if k == 0 {
		if execDelta != 0 {
			s.execSum += float64(execDelta) / 1e9
		}
		return
	}
	// Every counted completion stored the stage's lastEnd before its iters
	// increment, so this load (after the iters loads above) is no older than
	// the newest completion in the batch. It may be newer — an End whose
	// iters bump lands in the next fold — which only shifts a sliver of gap
	// from the next batch into this one.
	last := s.lastEnd.Load()
	execSec := float64(execDelta) / 1e9
	s.execSum += execSec
	s.execTime.ObserveBatch(execSec/float64(k), k)
	s.iterations += k
	s.consecFail = 0
	idle := s.idleAccum.Swap(0)
	origin := s.lastAtNanos
	if origin == noTime {
		// First fold since (re)start: anchor the gap at the first window
		// open, so the first batch yields a real rate observation instead of
		// only seeding the gap state.
		origin = s.firstBegin.Load()
	}
	if origin != noTime {
		gap := float64(last-origin-idle) / 1e9
		if gap > 0 {
			s.rate.ObserveBatch(float64(k)/gap, k)
		}
	}
	s.lastAtNanos = last
}

// ObserveBegin records that a worker opened a Begin/End window at now: the
// stage is working again, so any idle stretch that just ended is banked for
// the next completion's gap correction.
func (s *StageStats) ObserveBegin(now time.Time) {
	s.beginAtomic(now.UnixNano())
}

// ObserveEnd records that a worker closed its Begin/End window at now; when
// it was the last open window, the stage is idle from now on.
func (s *StageStats) ObserveEnd(now time.Time) {
	s.endAtomic(now.UnixNano())
}

// ObserveIteration records one Begin..End section of d at time now. The
// rate observation uses the inter-completion gap minus the idle time banked
// by ObserveBegin/ObserveEnd, so the first completion after a quiet spell
// reflects how fast the stage works, not how long it waited for input.
func (s *StageStats) ObserveIteration(d time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	sec := d.Seconds()
	s.execTime.Observe(sec)
	s.execSum += sec
	s.iterations++
	s.consecFail = 0
	nowNanos := now.UnixNano()
	idle := s.idleAccum.Swap(0)
	origin := s.lastAtNanos
	if origin == noTime {
		origin = s.firstBegin.Load() // see foldLocked: first-completion anchor
	}
	if origin != noTime {
		gap := float64(nowNanos-origin-idle) / 1e9
		if gap > 0 {
			s.rate.Observe(1 / gap)
		}
	}
	s.lastAtNanos = nowNanos
}

// ObserveInstanceDone records that one instance of the stage finished.
func (s *StageStats) ObserveInstanceDone() {
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
}

// ObserveWorkerStart records that a worker slot began iterating the stage.
func (s *StageStats) ObserveWorkerStart() {
	s.mu.Lock()
	s.workers++
	s.spawned++
	s.mu.Unlock()
}

// ObserveWorkerExit records that a worker slot exited; retired says whether
// the exit was a shrink retiring the slot (as opposed to the stage
// finishing or the nest suspending). The live gauge drops either way, and
// the gap state is cleared when the stage goes idle so the rate EWMA does
// not manufacture a huge inter-completion gap (and hence a near-zero rate
// observation) from a retirement pause when iterations resume.
func (s *StageStats) ObserveWorkerExit(retired bool) {
	s.mu.Lock()
	s.foldLocked()
	if s.workers > 0 {
		s.workers--
	}
	if retired {
		s.retired++
	}
	if s.workers == 0 {
		s.resetGapLocked()
	}
	s.mu.Unlock()
}

// resetGapLocked clears the inter-completion gap state when the stage has
// no live workers: the next completion starts a fresh rate history instead
// of deriving a gap from before the pause. Safe to touch the shared atomics
// here because with zero live workers there are no producers.
func (s *StageStats) resetGapLocked() {
	s.lastAtNanos = noTime
	s.lastEnd.Store(noTime)
	s.idleAccum.Store(0)
	s.firstBegin.Store(noTime)
	s.open.Store(0)
}

// ObserveFailure records one functor panic absorbed by the stage and
// returns the consecutive-failure count — the streak since the stage last
// completed an iteration.
func (s *StageStats) ObserveFailure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	s.failures++
	s.consecFail++
	return s.consecFail
}

// Failures returns how many functor panics the stage has absorbed.
func (s *StageStats) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// ConsecutiveFailures returns the failure streak since the stage last
// completed an iteration.
func (s *StageStats) ConsecutiveFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	return s.consecFail
}

// ObserveStall records one deadline overrun detected by the watchdog;
// duringDrain says whether the run was draining for a reconfiguration or
// Stop when the stall was detected.
func (s *StageStats) ObserveStall(duringDrain bool) {
	s.mu.Lock()
	s.stalls++
	if duringDrain {
		s.stallsDrain++
	}
	s.mu.Unlock()
}

// ObserveAbandon records that the watchdog abandoned a stalled worker slot:
// the live gauge drops (the slot no longer counts toward the stage's
// capacity) and the zombie gauge rises until the stuck goroutine, if it
// ever unblocks, exits. As with ObserveWorkerExit, the gap state is cleared
// when the stage goes idle.
func (s *StageStats) ObserveAbandon() {
	s.mu.Lock()
	s.foldLocked()
	if s.workers > 0 {
		s.workers--
	}
	s.zombies++
	// The abandoned slot's window was open (that is what stalled); close it
	// here since its late End, if any, stays invisible to the monitors. The
	// moment idleness began is unknown, so no idle stretch is banked until
	// the next window opens.
	for {
		o := s.open.Load()
		if o <= 0 || s.open.CompareAndSwap(o, o-1) {
			break
		}
	}
	if s.workers == 0 {
		s.resetGapLocked()
	}
	s.mu.Unlock()
}

// ObserveZombieExit records that an abandoned slot's goroutine finally
// exited; only the zombie gauge cares — all other accounting for the slot
// was settled at abandonment.
func (s *StageStats) ObserveZombieExit() {
	s.mu.Lock()
	if s.zombies > 0 {
		s.zombies--
	}
	s.mu.Unlock()
}

// Stalls returns how many deadline overruns the watchdog has detected.
func (s *StageStats) Stalls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalls
}

// StallsDuringDrain returns how many of the stage's stalls were detected
// while the run was draining.
func (s *StageStats) StallsDuringDrain() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stallsDrain
}

// Zombies returns the live count of abandoned-but-not-yet-exited slots.
func (s *StageStats) Zombies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.zombies
}

// addShedPast folds the final shed total of a retired queue instance into
// the durable aggregate.
func (s *StageStats) addShedPast(n uint64) {
	s.mu.Lock()
	s.shedPast += n
	s.mu.Unlock()
}

func (s *StageStats) shedPastTotal() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedPast
}

// ObserveResize records one in-place extent change applied to the stage.
func (s *StageStats) ObserveResize() {
	s.mu.Lock()
	s.resizes++
	s.mu.Unlock()
}

// Workers returns the live worker-slot gauge.
func (s *StageStats) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// Spawned returns how many worker slots have ever started.
func (s *StageStats) Spawned() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawned
}

// Retired returns how many worker slots were retired by shrinks.
func (s *StageStats) Retired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

// Resizes returns how many in-place extent changes the stage has absorbed.
func (s *StageStats) Resizes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resizes
}

// ExecTime returns the smoothed per-iteration CPU time in seconds.
func (s *StageStats) ExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	return s.execTime.Value()
}

// MeanExecTime returns the lifetime mean per-iteration CPU time in seconds.
func (s *StageStats) MeanExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	if s.iterations == 0 {
		return 0
	}
	return s.execSum / float64(s.iterations)
}

// Rate returns the smoothed iteration completion rate (iterations/sec,
// summed over all concurrent instances of the stage).
func (s *StageStats) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	return s.rate.Value()
}

// Observed reports whether the stage has folded at least one completed
// iteration — the readiness sentinel consumers of Rate()/MeanExecTime()
// check before trusting the numbers. Before the first completion both
// getters return 0, which the what-if profiler would otherwise read as an
// infinitely fast stage.
func (s *StageStats) Observed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	return s.iterations > 0
}

// Iterations returns the total number of observed iterations.
func (s *StageStats) Iterations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.foldLocked()
	return s.iterations
}

// Completed returns how many stage instances have finished.
func (s *StageStats) Completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Fold drains any per-slot accumulation into the durable aggregate. The
// executive's control loop calls it once per tick so the EWMAs advance at
// tick granularity even when nothing queries the stage.
func (s *StageStats) Fold() {
	s.mu.Lock()
	s.foldLocked()
	s.mu.Unlock()
}

// Registry is the process-wide monitor. Safe for concurrent use.
type Registry struct {
	alpha float64

	mu       sync.Mutex
	stages   map[Key]*StageStats
	loads    map[Key]map[int64]func() float64 // live LoadCBs by instance id
	sheds    map[Key]map[int64]func() uint64  // live shed counters by instance id
	sojourns map[Key]map[int64]func() float64 // live sojourn gauges by instance id
	nextID   int64
}

// NewRegistry returns a registry whose EWMAs use the given alpha.
func NewRegistry(alpha float64) *Registry {
	return &Registry{
		alpha:    alpha,
		stages:   make(map[Key]*StageStats),
		loads:    make(map[Key]map[int64]func() float64),
		sheds:    make(map[Key]map[int64]func() uint64),
		sojourns: make(map[Key]map[int64]func() float64),
	}
}

// Stage returns (creating if needed) the aggregate for key.
func (r *Registry) Stage(key Key) *StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[key]
	if !ok {
		s = newStageStats(r.alpha)
		r.stages[key] = s
	}
	return s
}

// FoldAll drains every stage's per-slot accumulators; the executive's
// control loop runs it each tick.
func (r *Registry) FoldAll() {
	r.mu.Lock()
	all := make([]*StageStats, 0, len(r.stages))
	for _, s := range r.stages {
		all = append(all, s)
	}
	r.mu.Unlock()
	for _, s := range all {
		s.Fold()
	}
}

// RegisterLoad registers a live LoadCB for key and returns a handle to
// unregister it when the instance ends. A nil cb registers nothing and
// returns a no-op release.
func (r *Registry) RegisterLoad(key Key, cb func() float64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.loads[key]
	if !ok {
		m = make(map[int64]func() float64)
		r.loads[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if m, ok := r.loads[key]; ok {
			delete(m, id)
		}
		r.mu.Unlock()
	}
}

// RegisterShed registers a live shed counter (typically Queue.Shed of the
// stage's in-queue) for key and returns a handle to unregister it when the
// instance ends. Unlike load, shed is cumulative: the release folds the
// counter's final value into the stage's durable aggregate so Shed never
// goes backwards across reconfigurations. A nil cb registers nothing.
func (r *Registry) RegisterShed(key Key, cb func() uint64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.sheds[key]
	if !ok {
		m = make(map[int64]func() uint64)
		r.sheds[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		live := false
		if m, ok := r.sheds[key]; ok {
			if _, live = m[id]; live {
				delete(m, id)
			}
		}
		r.mu.Unlock()
		if live {
			r.Stage(key).addShedPast(cb())
		}
	}
}

// RegisterSojourn registers a live queue-sojourn gauge (typically
// Queue.MeanSojourn of the stage's in-queue) for key and returns a handle to
// unregister it when the instance ends. Sojourn is a gauge like load, not a
// cumulative counter: nothing is folded on release. A nil cb registers
// nothing and returns a no-op release.
func (r *Registry) RegisterSojourn(key Key, cb func() float64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.sojourns[key]
	if !ok {
		m = make(map[int64]func() float64)
		r.sojourns[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if m, ok := r.sojourns[key]; ok {
			delete(m, id)
		}
		r.mu.Unlock()
	}
}

// Sojourn polls all live sojourn gauges for key and returns their mean (the
// stage's smoothed in-queue wait in seconds) and how many instances
// reported.
func (r *Registry) Sojourn(key Key) (mean float64, instances int) {
	r.mu.Lock()
	cbs := make([]func() float64, 0, 4)
	for _, cb := range r.sojourns[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	var total float64
	for _, cb := range cbs {
		total += cb()
	}
	if len(cbs) == 0 {
		return 0, 0
	}
	return total / float64(len(cbs)), len(cbs)
}

// Shed returns the stage's cumulative shed-item count: retired instances'
// totals plus the live counters.
func (r *Registry) Shed(key Key) uint64 {
	r.mu.Lock()
	cbs := make([]func() uint64, 0, 4)
	for _, cb := range r.sheds[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	total := r.Stage(key).shedPastTotal()
	for _, cb := range cbs {
		total += cb()
	}
	return total
}

// Load polls all live LoadCBs for key and returns their sum (total items
// waiting for the stage) and how many instances reported.
func (r *Registry) Load(key Key) (total float64, instances int) {
	r.mu.Lock()
	cbs := make([]func() float64, 0, 4)
	for _, cb := range r.loads[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	for _, cb := range cbs {
		total += cb()
	}
	return total, len(cbs)
}

// Keys returns all stage keys ever observed, in unspecified order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Key, 0, len(r.stages))
	for k := range r.stages {
		out = append(out, k)
	}
	return out
}

// Reset clears all aggregates and live load registrations; used between
// experiment runs that share a runtime.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stages = make(map[Key]*StageStats)
	r.loads = make(map[Key]map[int64]func() float64)
	r.sheds = make(map[Key]map[int64]func() uint64)
	r.sojourns = make(map[Key]map[int64]func() float64)
}

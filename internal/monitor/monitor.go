// Package monitor aggregates the application features DoPE observes while a
// program runs: per-task execution time (measured between Task.Begin and
// Task.End), per-task throughput, iteration counts, and the load reported by
// each task's LoadCB. Mechanisms consume these aggregates through the query
// API of core.Report (the paper's DoPE::getExecTime / DoPE::getLoad).
//
// Stage instances come and go (an inner pipeline lives only as long as its
// parent's current work item), so the monitor separates durable per-stage
// aggregates, keyed by "nest/stage", from a registry of live LoadCB
// callbacks that is polled on demand.
package monitor

import (
	"sync"
	"time"

	"dope/internal/stats"
)

// Key identifies a stage across instantiations.
type Key struct {
	Nest  string
	Stage string
}

// StageStats is the durable aggregate for one stage.
type StageStats struct {
	mu         sync.Mutex
	execTime   *stats.EWMA // seconds per iteration, CPU section only
	iterations uint64
	completed  uint64 // instances that ran to Finished
	lastAt     time.Time
	rate       *stats.EWMA // iterations/sec from inter-completion gaps
	execSum    float64

	// Worker-slot lifecycle, maintained by the executive's stage worker
	// groups. With in-place resizing the configured extent and the number
	// of workers actually iterating can briefly diverge (retiring slots
	// finish their current iteration; fresh slots are still warming up), so
	// mechanisms that normalize Rate or Load per worker should divide by
	// Workers(), the live gauge, not by the configured extent.
	workers int    // live worker slots (includes slots draining a retirement)
	spawned uint64 // slots ever started
	retired uint64 // slots that exited because a shrink retired them
	resizes uint64 // in-place extent changes applied to the stage

	// Failure accounting, maintained by the executive's failure policies:
	// total functor panics absorbed, and the streak since the stage last
	// completed an iteration (reset by ObserveIteration).
	failures   uint64
	consecFail int
}

func newStageStats(alpha float64) *StageStats {
	return &StageStats{
		execTime: stats.NewEWMA(alpha),
		rate:     stats.NewEWMA(alpha),
	}
}

// ObserveIteration records one Begin..End section of d at time now.
func (s *StageStats) ObserveIteration(d time.Duration, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sec := d.Seconds()
	s.execTime.Observe(sec)
	s.execSum += sec
	s.iterations++
	s.consecFail = 0
	if !s.lastAt.IsZero() {
		gap := now.Sub(s.lastAt).Seconds()
		if gap > 0 {
			s.rate.Observe(1 / gap)
		}
	}
	s.lastAt = now
}

// ObserveInstanceDone records that one instance of the stage finished.
func (s *StageStats) ObserveInstanceDone() {
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
}

// ObserveWorkerStart records that a worker slot began iterating the stage.
func (s *StageStats) ObserveWorkerStart() {
	s.mu.Lock()
	s.workers++
	s.spawned++
	s.mu.Unlock()
}

// ObserveWorkerExit records that a worker slot exited; retired says whether
// the exit was a shrink retiring the slot (as opposed to the stage
// finishing or the nest suspending). The live gauge drops either way, and
// lastAt is cleared when the stage goes idle so the rate EWMA does not
// manufacture a huge inter-completion gap (and hence a near-zero rate
// observation) from a retirement pause when iterations resume.
func (s *StageStats) ObserveWorkerExit(retired bool) {
	s.mu.Lock()
	if s.workers > 0 {
		s.workers--
	}
	if retired {
		s.retired++
	}
	if s.workers == 0 {
		s.lastAt = time.Time{}
	}
	s.mu.Unlock()
}

// ObserveFailure records one functor panic absorbed by the stage and
// returns the consecutive-failure count — the streak since the stage last
// completed an iteration.
func (s *StageStats) ObserveFailure() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures++
	s.consecFail++
	return s.consecFail
}

// Failures returns how many functor panics the stage has absorbed.
func (s *StageStats) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// ConsecutiveFailures returns the failure streak since the stage last
// completed an iteration.
func (s *StageStats) ConsecutiveFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.consecFail
}

// ObserveResize records one in-place extent change applied to the stage.
func (s *StageStats) ObserveResize() {
	s.mu.Lock()
	s.resizes++
	s.mu.Unlock()
}

// Workers returns the live worker-slot gauge.
func (s *StageStats) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// Spawned returns how many worker slots have ever started.
func (s *StageStats) Spawned() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawned
}

// Retired returns how many worker slots were retired by shrinks.
func (s *StageStats) Retired() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired
}

// Resizes returns how many in-place extent changes the stage has absorbed.
func (s *StageStats) Resizes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resizes
}

// ExecTime returns the smoothed per-iteration CPU time in seconds.
func (s *StageStats) ExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execTime.Value()
}

// MeanExecTime returns the lifetime mean per-iteration CPU time in seconds.
func (s *StageStats) MeanExecTime() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.iterations == 0 {
		return 0
	}
	return s.execSum / float64(s.iterations)
}

// Rate returns the smoothed iteration completion rate (iterations/sec,
// summed over all concurrent instances of the stage).
func (s *StageStats) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rate.Value()
}

// Iterations returns the total number of observed iterations.
func (s *StageStats) Iterations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.iterations
}

// Completed returns how many stage instances have finished.
func (s *StageStats) Completed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// Registry is the process-wide monitor. Safe for concurrent use.
type Registry struct {
	alpha float64

	mu     sync.Mutex
	stages map[Key]*StageStats
	loads  map[Key]map[int64]func() float64 // live LoadCBs by instance id
	nextID int64
}

// NewRegistry returns a registry whose EWMAs use the given alpha.
func NewRegistry(alpha float64) *Registry {
	return &Registry{
		alpha:  alpha,
		stages: make(map[Key]*StageStats),
		loads:  make(map[Key]map[int64]func() float64),
	}
}

// Stage returns (creating if needed) the aggregate for key.
func (r *Registry) Stage(key Key) *StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.stages[key]
	if !ok {
		s = newStageStats(r.alpha)
		r.stages[key] = s
	}
	return s
}

// RegisterLoad registers a live LoadCB for key and returns a handle to
// unregister it when the instance ends. A nil cb registers nothing and
// returns a no-op release.
func (r *Registry) RegisterLoad(key Key, cb func() float64) (release func()) {
	if cb == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	m, ok := r.loads[key]
	if !ok {
		m = make(map[int64]func() float64)
		r.loads[key] = m
	}
	m[id] = cb
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if m, ok := r.loads[key]; ok {
			delete(m, id)
		}
		r.mu.Unlock()
	}
}

// Load polls all live LoadCBs for key and returns their sum (total items
// waiting for the stage) and how many instances reported.
func (r *Registry) Load(key Key) (total float64, instances int) {
	r.mu.Lock()
	cbs := make([]func() float64, 0, 4)
	for _, cb := range r.loads[key] {
		cbs = append(cbs, cb)
	}
	r.mu.Unlock()
	for _, cb := range cbs {
		total += cb()
	}
	return total, len(cbs)
}

// Keys returns all stage keys ever observed, in unspecified order.
func (r *Registry) Keys() []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Key, 0, len(r.stages))
	for k := range r.stages {
		out = append(out, k)
	}
	return out
}

// Reset clears all aggregates and live load registrations; used between
// experiment runs that share a runtime.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stages = make(map[Key]*StageStats)
	r.loads = make(map[Key]map[int64]func() float64)
}

package monitor

import (
	"math"
	"sync"
	"testing"
	"time"
)

var key = Key{Nest: "video", Stage: "transform"}

func TestStageStatsExecTime(t *testing.T) {
	r := NewRegistry(0.5)
	s := r.Stage(key)
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		s.ObserveIteration(10*time.Millisecond, now)
		now = now.Add(10 * time.Millisecond)
	}
	if got := s.ExecTime(); math.Abs(got-0.010) > 1e-6 {
		t.Fatalf("exec time = %v, want 0.010", got)
	}
	if got := s.MeanExecTime(); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("mean exec time = %v", got)
	}
	if s.Iterations() != 20 {
		t.Fatalf("iterations = %d", s.Iterations())
	}
	// One iteration per 10ms => 100/sec.
	if got := s.Rate(); math.Abs(got-100) > 1 {
		t.Fatalf("rate = %v, want ~100", got)
	}
}

func TestStageIdentity(t *testing.T) {
	r := NewRegistry(0.2)
	a := r.Stage(key)
	b := r.Stage(key)
	if a != b {
		t.Fatal("same key must return same aggregate")
	}
	c := r.Stage(Key{Nest: "video", Stage: "read"})
	if a == c {
		t.Fatal("different keys must not share aggregates")
	}
}

func TestInstanceCompletion(t *testing.T) {
	r := NewRegistry(0.2)
	s := r.Stage(key)
	s.ObserveInstanceDone()
	s.ObserveInstanceDone()
	if s.Completed() != 2 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestLoadRegistry(t *testing.T) {
	r := NewRegistry(0.2)
	total, n := r.Load(key)
	if total != 0 || n != 0 {
		t.Fatal("no registered loads should report zero")
	}
	rel1 := r.RegisterLoad(key, func() float64 { return 3 })
	rel2 := r.RegisterLoad(key, func() float64 { return 4 })
	total, n = r.Load(key)
	if total != 7 || n != 2 {
		t.Fatalf("load = %v from %d instances", total, n)
	}
	rel1()
	total, n = r.Load(key)
	if total != 4 || n != 1 {
		t.Fatalf("after release load = %v from %d", total, n)
	}
	rel2()
	rel2() // double release is harmless
	if _, n := r.Load(key); n != 0 {
		t.Fatal("all releases should empty the registry")
	}
}

func TestRegisterNilLoad(t *testing.T) {
	r := NewRegistry(0.2)
	release := r.RegisterLoad(key, nil)
	release() // no-op must not panic
	if _, n := r.Load(key); n != 0 {
		t.Fatal("nil load should not register")
	}
}

func TestKeysAndReset(t *testing.T) {
	r := NewRegistry(0.2)
	r.Stage(Key{Nest: "a", Stage: "x"})
	r.Stage(Key{Nest: "a", Stage: "y"})
	if got := len(r.Keys()); got != 2 {
		t.Fatalf("keys = %d", got)
	}
	r.Reset()
	if got := len(r.Keys()); got != 0 {
		t.Fatalf("keys after reset = %d", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(0.2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := Key{Nest: "n", Stage: "s"}
			for j := 0; j < 200; j++ {
				r.Stage(k).ObserveIteration(time.Millisecond, time.Unix(int64(j), 0))
				rel := r.RegisterLoad(k, func() float64 { return 1 })
				r.Load(k)
				rel()
			}
		}(i)
	}
	wg.Wait()
	if r.Stage(Key{Nest: "n", Stage: "s"}).Iterations() != 1600 {
		t.Fatalf("iterations = %d", r.Stage(Key{Nest: "n", Stage: "s"}).Iterations())
	}
}

func TestFailureCounters(t *testing.T) {
	s := newStageStats(0.2)
	if s.Failures() != 0 || s.ConsecutiveFailures() != 0 {
		t.Fatal("fresh stats report failures")
	}
	if got := s.ObserveFailure(); got != 1 {
		t.Fatalf("first ObserveFailure = %d", got)
	}
	if got := s.ObserveFailure(); got != 2 {
		t.Fatalf("second ObserveFailure = %d", got)
	}
	if s.Failures() != 2 || s.ConsecutiveFailures() != 2 {
		t.Fatalf("counters = %d/%d", s.Failures(), s.ConsecutiveFailures())
	}
	// A completed iteration breaks the streak but not the total.
	s.ObserveIteration(time.Millisecond, time.Unix(1, 0))
	if s.ConsecutiveFailures() != 0 {
		t.Fatalf("streak after iteration = %d", s.ConsecutiveFailures())
	}
	if s.Failures() != 2 {
		t.Fatalf("total after iteration = %d", s.Failures())
	}
	if got := s.ObserveFailure(); got != 1 {
		t.Fatalf("streak restarts at %d", got)
	}
}

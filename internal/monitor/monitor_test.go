package monitor

import (
	"math"
	"sync"
	"testing"
	"time"
)

var key = Key{Nest: "video", Stage: "transform"}

func TestStageStatsExecTime(t *testing.T) {
	r := NewRegistry(0.5)
	s := r.Stage(key)
	now := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		s.ObserveIteration(10*time.Millisecond, now)
		now = now.Add(10 * time.Millisecond)
	}
	if got := s.ExecTime(); math.Abs(got-0.010) > 1e-6 {
		t.Fatalf("exec time = %v, want 0.010", got)
	}
	if got := s.MeanExecTime(); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("mean exec time = %v", got)
	}
	if s.Iterations() != 20 {
		t.Fatalf("iterations = %d", s.Iterations())
	}
	// One iteration per 10ms => 100/sec.
	if got := s.Rate(); math.Abs(got-100) > 1 {
		t.Fatalf("rate = %v, want ~100", got)
	}
}

func TestStageIdentity(t *testing.T) {
	r := NewRegistry(0.2)
	a := r.Stage(key)
	b := r.Stage(key)
	if a != b {
		t.Fatal("same key must return same aggregate")
	}
	c := r.Stage(Key{Nest: "video", Stage: "read"})
	if a == c {
		t.Fatal("different keys must not share aggregates")
	}
}

func TestInstanceCompletion(t *testing.T) {
	r := NewRegistry(0.2)
	s := r.Stage(key)
	s.ObserveInstanceDone()
	s.ObserveInstanceDone()
	if s.Completed() != 2 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestLoadRegistry(t *testing.T) {
	r := NewRegistry(0.2)
	total, n := r.Load(key)
	if total != 0 || n != 0 {
		t.Fatal("no registered loads should report zero")
	}
	rel1 := r.RegisterLoad(key, func() float64 { return 3 })
	rel2 := r.RegisterLoad(key, func() float64 { return 4 })
	total, n = r.Load(key)
	if total != 7 || n != 2 {
		t.Fatalf("load = %v from %d instances", total, n)
	}
	rel1()
	total, n = r.Load(key)
	if total != 4 || n != 1 {
		t.Fatalf("after release load = %v from %d", total, n)
	}
	rel2()
	rel2() // double release is harmless
	if _, n := r.Load(key); n != 0 {
		t.Fatal("all releases should empty the registry")
	}
}

func TestRegisterNilLoad(t *testing.T) {
	r := NewRegistry(0.2)
	release := r.RegisterLoad(key, nil)
	release() // no-op must not panic
	if _, n := r.Load(key); n != 0 {
		t.Fatal("nil load should not register")
	}
}

func TestKeysAndReset(t *testing.T) {
	r := NewRegistry(0.2)
	r.Stage(Key{Nest: "a", Stage: "x"})
	r.Stage(Key{Nest: "a", Stage: "y"})
	if got := len(r.Keys()); got != 2 {
		t.Fatalf("keys = %d", got)
	}
	r.Reset()
	if got := len(r.Keys()); got != 0 {
		t.Fatalf("keys after reset = %d", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(0.2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := Key{Nest: "n", Stage: "s"}
			for j := 0; j < 200; j++ {
				r.Stage(k).ObserveIteration(time.Millisecond, time.Unix(int64(j), 0))
				rel := r.RegisterLoad(k, func() float64 { return 1 })
				r.Load(k)
				rel()
			}
		}(i)
	}
	wg.Wait()
	if r.Stage(Key{Nest: "n", Stage: "s"}).Iterations() != 1600 {
		t.Fatalf("iterations = %d", r.Stage(Key{Nest: "n", Stage: "s"}).Iterations())
	}
}

func TestFailureCounters(t *testing.T) {
	s := newStageStats(0.2)
	if s.Failures() != 0 || s.ConsecutiveFailures() != 0 {
		t.Fatal("fresh stats report failures")
	}
	if got := s.ObserveFailure(); got != 1 {
		t.Fatalf("first ObserveFailure = %d", got)
	}
	if got := s.ObserveFailure(); got != 2 {
		t.Fatalf("second ObserveFailure = %d", got)
	}
	if s.Failures() != 2 || s.ConsecutiveFailures() != 2 {
		t.Fatalf("counters = %d/%d", s.Failures(), s.ConsecutiveFailures())
	}
	// A completed iteration breaks the streak but not the total.
	s.ObserveIteration(time.Millisecond, time.Unix(1, 0))
	if s.ConsecutiveFailures() != 0 {
		t.Fatalf("streak after iteration = %d", s.ConsecutiveFailures())
	}
	if s.Failures() != 2 {
		t.Fatalf("total after iteration = %d", s.Failures())
	}
	if got := s.ObserveFailure(); got != 1 {
		t.Fatalf("streak restarts at %d", got)
	}
}

// TestRateExcludesIdleWait pins the idle-accounting contract of the rate
// EWMA: a stage that still has a live worker but sits with no Begin/End
// window open (blocked on sparse input) must not fold the wait into the
// inter-completion gap. Before idle accounting, the scenario below — worker
// A iterates, worker B arrives, A exits (so the worker gauge never touches
// zero and lastAt survives), then the stage idles 60 s before B's first
// completion — observed a gap of ~60 s and collapsed the rate to ~0.017/s.
func TestRateExcludesIdleWait(t *testing.T) {
	s := newStageStats(0.5)

	s.ObserveWorkerStart() // A
	t0 := time.Unix(100, 0)
	s.ObserveBegin(t0.Add(-10 * time.Millisecond))
	s.ObserveIteration(10*time.Millisecond, t0)
	s.ObserveEnd(t0)

	s.ObserveWorkerStart()     // B arrives
	s.ObserveWorkerExit(false) // A exits; workers 2 -> 1, lastAt survives

	// 60 s with no window open, then B completes one 10 ms iteration.
	begin := t0.Add(60 * time.Second)
	s.ObserveBegin(begin)
	end := begin.Add(10 * time.Millisecond)
	s.ObserveIteration(10*time.Millisecond, end)
	s.ObserveEnd(end)

	// The gap net of banked idle time is the 10 ms window: ~100/s.
	if got := s.Rate(); math.Abs(got-100) > 5 {
		t.Fatalf("rate after idle spell = %v, want ~100", got)
	}
}

// TestRateIdleInterleaved exercises overlapping windows: while any sibling
// worker still holds a window open, wall time is working time, and only the
// stretches with zero open windows are excluded.
func TestRateIdleInterleaved(t *testing.T) {
	s := newStageStats(0.5)
	s.ObserveWorkerStart()
	s.ObserveWorkerStart()

	at := func(ms int) time.Time { return time.Unix(50, 0).Add(time.Duration(ms) * time.Millisecond) }

	// Worker A: window [0, 30]; completion at 30.
	s.ObserveBegin(at(0))
	// Worker B: window [10, 20] overlaps A's; its completion at 20 seeds
	// lastAt.
	s.ObserveBegin(at(10))
	s.ObserveIteration(10*time.Millisecond, at(20))
	s.ObserveEnd(at(20))
	s.ObserveIteration(30*time.Millisecond, at(30))
	s.ObserveEnd(at(30))
	// Idle [30, 130]: no window open. Then A iterates [130, 140].
	s.ObserveBegin(at(130))
	s.ObserveIteration(10*time.Millisecond, at(140))
	s.ObserveEnd(at(140))

	// Gap for the first completion at 20: anchored at the stage's first
	// window open (A's at 0) -> 20 ms -> 50/s. Gap for the completion at
	// 30: 10 ms (B's at 20 -> A's at 30, fully covered by open windows) ->
	// 100/s. Gap for the completion at 140: 110 ms wall minus 100 ms idle =
	// 10 ms -> 100/s. EWMA(0.5) over 50, 100, 100 settles at 87.5; had the
	// idle stretch folded in, the last observation would be ~9/s and the
	// EWMA would collapse below 45.
	if got := s.Rate(); math.Abs(got-87.5) > 5 {
		t.Fatalf("rate with interleaved windows = %v, want ~87.5", got)
	}
}

// TestRateResetOnIdleStage pins the existing workers==0 contract after the
// idle-accounting change: once the last worker exits, the gap state is
// fully cleared, so the first completion of the next instance starts a
// fresh history instead of deriving a gap (or banked idle time) from
// before the pause.
func TestRateResetOnIdleStage(t *testing.T) {
	s := newStageStats(0.5)
	s.ObserveWorkerStart()
	t0 := time.Unix(100, 0)
	s.ObserveBegin(t0.Add(-10 * time.Millisecond))
	s.ObserveIteration(10*time.Millisecond, t0)
	s.ObserveEnd(t0)
	s.ObserveWorkerExit(false) // workers 1 -> 0

	rate := s.Rate() // no inter-completion gap observed yet

	// A new instance an hour later: its first completion must not observe
	// a gap at all.
	later := t0.Add(time.Hour)
	s.ObserveWorkerStart()
	s.ObserveBegin(later)
	s.ObserveIteration(10*time.Millisecond, later.Add(10*time.Millisecond))
	s.ObserveEnd(later.Add(10 * time.Millisecond))
	if got := s.Rate(); got != rate {
		t.Fatalf("first completion after a worker-less pause moved the rate: %v -> %v", rate, got)
	}
}

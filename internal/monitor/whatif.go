// Causal what-if profiler: per-stage virtual-speedup estimates in the style
// of TASKPROF ("what if this region were K× faster/wider?"), computed from
// the observations the monitor already records — per-iteration service time
// from Begin/End windows, completion rate, queue occupancy and queue
// sojourn.
//
// The model is a closed queueing network over the nest/pipeline topology,
// approximated by operational asymptotic bounds. Each stage i is a station
// with c_i servers (its DoP extent) and per-item service time s_i, so its
// service demand is D_i = s_i / c_i and its capacity 1/D_i. With N jobs in
// the system (queued items plus items in service, by Little's law), the
// closed network's throughput is approximated by the balanced bound
//
//	X(N) = min( N / ΣD_i , 1 / max_i D_i )
//
// — population-limited when N is small, bottleneck-limited when the queues
// are deep. A virtual speedup re-evaluates X with one stage's operating
// point changed (c_j+1 for the DoP derivative, s_j·(1−ε) for the
// service-time derivative) while N and every other stage hold still; the
// difference is the predicted end-to-end payoff. The approximation is exact
// in both asymptotes and within the usual balanced-job-bounds error in
// between, which is accurate enough to *rank* stages — the only thing the
// gradient mechanism and the reports consume.
//
// The estimate is invalid (Valid=false, Reason says why) when any stage has
// not completed an iteration since its last reset (the monitor's readiness
// sentinel — an unfolded stage would read as infinitely fast), when a
// service time is non-positive, or when any computed figure is non-finite.
// Non-finite values are scrubbed to zero so the report always marshals.
package monitor

import (
	"fmt"
	"math"
	"sort"
)

// WhatIfInput is one stage's observed operating point, in topology order.
type WhatIfInput struct {
	// Name identifies the stage.
	Name string
	// Parallel marks the stage parallelizable; sequential stages have a
	// fixed single server and a zero DoP payoff by construction.
	Parallel bool
	// Workers is the stage's current DoP extent (server count). Values
	// below 1 are treated as 1.
	Workers int
	// MaxDoP caps the extent (0 = unbounded); a stage at its cap cannot
	// receive another context, so its DoP payoff is zero.
	MaxDoP int
	// ServiceTime is the measured per-item CPU seconds (Begin..End).
	ServiceTime float64
	// Rate is the measured completion rate (items/sec, all servers).
	Rate float64
	// Queue is the measured in-queue occupancy (items waiting).
	Queue float64
	// Sojourn is the measured mean queue wait in seconds (0 if untracked).
	// When Queue is unreported it reconstructs occupancy via Little's law.
	Sojourn float64
	// Ready reports that the stage has completed at least one iteration
	// since its last reset; an unready stage invalidates the estimate.
	Ready bool
}

// WhatIfStage is one stage's share of the what-if report.
type WhatIfStage struct {
	// Name identifies the stage.
	Name string
	// Demand is the stage's service demand s/c in seconds; 1/Demand is its
	// capacity. The stage with the largest demand is the bottleneck.
	Demand float64
	// Utilization is the measured rate × s / c, clamped to [0, 1].
	Utilization float64
	// Bottleneck marks the stage with the largest demand.
	Bottleneck bool
	// PayoffDoP is the predicted end-to-end throughput gain (items/sec)
	// from granting the stage one more context.
	PayoffDoP float64
	// PayoffService is the predicted throughput derivative with respect to
	// relative service-time reduction (items/sec per 100% speedup).
	PayoffService float64
	// Ready echoes the input's readiness sentinel.
	Ready bool
}

// WhatIfReport ranks stages by predicted payoff per added context.
type WhatIfReport struct {
	// Stages is ranked best DoP payoff first (ties: service payoff, then
	// demand, then name).
	Stages []WhatIfStage
	// Bottleneck names the largest-demand stage.
	Bottleneck string
	// Throughput is the model's baseline X(N) in items/sec.
	Throughput float64
	// ResponseTime is the predicted end-to-end per-item seconds: measured
	// service + sojourn when sojourns are tracked, N/X otherwise.
	ResponseTime float64
	// Population is the job count N the model evaluated at.
	Population float64
	// MeasuredRate is the smallest positive measured stage rate — the
	// observed end-to-end throughput, for comparison against the model.
	MeasuredRate float64
	// Valid reports whether the estimate is trustworthy; Reason says why
	// not.
	Valid  bool
	Reason string
}

// whatIfEpsilon is the relative service-time reduction used for the
// ∂X/∂service derivative.
const whatIfEpsilon = 0.1

// xModel is the balanced asymptotic bound on a closed network's throughput:
// population-limited at N/ΣD, bottleneck-limited at 1/maxD.
func xModel(n float64, demands []float64) float64 {
	var sum, max float64
	for _, d := range demands {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum <= 0 || max <= 0 || n <= 0 {
		return 0
	}
	x := n / sum
	if cap := 1 / max; x > cap {
		x = cap
	}
	return x
}

// servers returns the effective server count of an input.
func (in *WhatIfInput) servers() int {
	if !in.Parallel {
		return 1
	}
	if in.Workers < 1 {
		return 1
	}
	return in.Workers
}

// population estimates the job count N in the closed system: queued items
// plus items in service (Rate×s, Little's law). A stage that reports a
// sojourn but no occupancy contributes Rate×Sojourn instead.
func population(in []WhatIfInput) float64 {
	var n float64
	for i := range in {
		q := in[i].Queue
		if q <= 0 && in[i].Sojourn > 0 && in[i].Rate > 0 {
			q = in[i].Rate * in[i].Sojourn
		}
		if q > 0 {
			n += q
		}
		if in[i].Rate > 0 && in[i].ServiceTime > 0 {
			n += in[i].Rate * in[i].ServiceTime
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// WhatIfThroughput evaluates the model's predicted end-to-end throughput for
// the observed operating point with each stage's server count overridden by
// workers (index-aligned; values < 1 mean "keep the observed count"). The
// gradient mechanism uses it to score candidate context moves.
func WhatIfThroughput(in []WhatIfInput, workers []int) float64 {
	if len(in) == 0 {
		return 0
	}
	n := population(in)
	demands := make([]float64, len(in))
	for i := range in {
		c := in[i].servers()
		if i < len(workers) && workers[i] >= 1 && in[i].Parallel {
			c = workers[i]
		}
		demands[i] = in[i].ServiceTime / float64(c)
	}
	return xModel(n, demands)
}

// WhatIf computes the causal what-if report for one nest level's stages.
func WhatIf(in []WhatIfInput) WhatIfReport {
	rep := WhatIfReport{Valid: true}
	if len(in) == 0 {
		rep.Valid = false
		rep.Reason = "no stages"
		return rep
	}
	demands := make([]float64, len(in))
	bottleneck := 0
	for i := range in {
		if !in[i].Ready && rep.Valid {
			rep.Valid = false
			rep.Reason = fmt.Sprintf("stage %q has no completed iteration yet", in[i].Name)
		}
		if in[i].ServiceTime <= 0 && rep.Valid {
			rep.Valid = false
			rep.Reason = fmt.Sprintf("stage %q has no service-time observation", in[i].Name)
		}
		demands[i] = in[i].ServiceTime / float64(in[i].servers())
		if demands[i] > demands[bottleneck] {
			bottleneck = i
		}
	}
	n := population(in)
	base := xModel(n, demands)
	rep.Throughput = base
	rep.Population = n
	rep.Bottleneck = in[bottleneck].Name

	var sojournSum float64
	haveSojourn := false
	for i := range in {
		if in[i].Sojourn > 0 {
			haveSojourn = true
		}
		sojournSum += in[i].ServiceTime + in[i].Sojourn
		r := in[i].Rate
		if r > 0 && (rep.MeasuredRate == 0 || r < rep.MeasuredRate) {
			rep.MeasuredRate = r
		}
	}
	if haveSojourn {
		rep.ResponseTime = sojournSum
	} else if base > 0 {
		rep.ResponseTime = n / base
	}

	scratch := make([]float64, len(in))
	rep.Stages = make([]WhatIfStage, len(in))
	for i := range in {
		st := WhatIfStage{
			Name:       in[i].Name,
			Demand:     demands[i],
			Bottleneck: i == bottleneck,
			Ready:      in[i].Ready,
		}
		if c := float64(in[i].servers()); in[i].ServiceTime > 0 {
			st.Utilization = in[i].Rate * in[i].ServiceTime / c
			if st.Utilization < 0 {
				st.Utilization = 0
			}
			if st.Utilization > 1 {
				st.Utilization = 1
			}
		}
		// ∂X/∂DoP: one more context, everything else fixed.
		if in[i].Parallel && (in[i].MaxDoP <= 0 || in[i].servers() < in[i].MaxDoP) {
			copy(scratch, demands)
			scratch[i] = in[i].ServiceTime / float64(in[i].servers()+1)
			if x := xModel(n, scratch); x > base {
				st.PayoffDoP = x - base
			}
		}
		// ∂X/∂service: the stage ε faster, same width.
		copy(scratch, demands)
		scratch[i] = demands[i] * (1 - whatIfEpsilon)
		if x := xModel(n, scratch); x > base {
			st.PayoffService = (x - base) / whatIfEpsilon
		}
		rep.Stages[i] = st
	}

	sort.SliceStable(rep.Stages, func(a, b int) bool {
		sa, sb := &rep.Stages[a], &rep.Stages[b]
		if sa.PayoffDoP != sb.PayoffDoP {
			return sa.PayoffDoP > sb.PayoffDoP
		}
		if sa.PayoffService != sb.PayoffService {
			return sa.PayoffService > sb.PayoffService
		}
		if sa.Demand != sb.Demand {
			return sa.Demand > sb.Demand
		}
		return sa.Name < sb.Name
	})
	rep.scrub()
	return rep
}

// scrub zeroes non-finite figures (and invalidates the report): NaN/Inf must
// never reach a mechanism's arithmetic or a JSON encoder.
func (rep *WhatIfReport) scrub() {
	bad := func(v *float64) {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = 0
			if rep.Valid {
				rep.Valid = false
				rep.Reason = "non-finite estimate scrubbed"
			}
		}
	}
	bad(&rep.Throughput)
	bad(&rep.ResponseTime)
	bad(&rep.Population)
	bad(&rep.MeasuredRate)
	for i := range rep.Stages {
		st := &rep.Stages[i]
		bad(&st.Demand)
		bad(&st.Utilization)
		bad(&st.PayoffDoP)
		bad(&st.PayoffService)
	}
}

package monitor

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// twoStage builds the synthetic two-stage fixture: stage "fast" at 1 ms and
// stage "slow" at 4 ms per item, one worker each, with a known analytic
// bottleneck (slow).
func twoStage() []WhatIfInput {
	return []WhatIfInput{
		{Name: "fast", Parallel: true, Workers: 1, ServiceTime: 1e-3, Rate: 200, Queue: 1, Ready: true},
		{Name: "slow", Parallel: true, Workers: 1, ServiceTime: 4e-3, Rate: 200, Queue: 9, Ready: true},
	}
}

func TestWhatIfTwoStageBottleneck(t *testing.T) {
	rep := WhatIf(twoStage())
	if !rep.Valid {
		t.Fatalf("valid = false: %s", rep.Reason)
	}
	if rep.Bottleneck != "slow" {
		t.Fatalf("bottleneck = %q, want slow", rep.Bottleneck)
	}
	if rep.Stages[0].Name != "slow" {
		t.Fatalf("top-ranked = %q, want slow", rep.Stages[0].Name)
	}
	if !rep.Stages[0].Bottleneck {
		t.Fatal("top stage not flagged as bottleneck")
	}
	// Deep queues put the model in the bottleneck-limited regime: X = 1/D_slow
	// = 250/s; a second slow worker halves the demand, and the fast stage
	// (D = 1 ms) becomes the new bottleneck at 1000/s — but the population
	// bound caps the gain. Payoff must be positive and the slow stage's must
	// strictly exceed the fast stage's.
	if rep.Stages[0].PayoffDoP <= 0 {
		t.Fatalf("bottleneck payoff = %v, want > 0", rep.Stages[0].PayoffDoP)
	}
	var fast *WhatIfStage
	for i := range rep.Stages {
		if rep.Stages[i].Name == "fast" {
			fast = &rep.Stages[i]
		}
	}
	if fast.PayoffDoP >= rep.Stages[0].PayoffDoP {
		t.Fatalf("fast payoff %v not below slow payoff %v", fast.PayoffDoP, rep.Stages[0].PayoffDoP)
	}
	// Baseline model throughput: bottleneck bound 1/4ms = 250/s.
	if math.Abs(rep.Throughput-250) > 1 {
		t.Fatalf("model throughput = %v, want ~250", rep.Throughput)
	}
}

// ferretShaped mirrors the sim's ferret model: 6 stages, rank dominant, the
// paper's even static allocation. The analytic bottleneck is rank.
func ferretShaped() []WhatIfInput {
	base := 0.4e-3
	names := []string{"load", "segment", "extract", "index", "rank", "out"}
	times := []float64{0.5 * base, 1 * base, 2 * base, 4 * base, 14 * base, 0.5 * base}
	par := []bool{false, true, true, true, true, false}
	workers := []int{1, 5, 5, 5, 6, 1}
	in := make([]WhatIfInput, len(names))
	for i := range names {
		c := workers[i]
		in[i] = WhatIfInput{
			Name: names[i], Parallel: par[i], Workers: c,
			ServiceTime: times[i], Rate: float64(c) / times[i],
			Queue: 4, Ready: true,
		}
	}
	return in
}

func TestWhatIfFerretRanksRankStageFirst(t *testing.T) {
	rep := WhatIf(ferretShaped())
	if !rep.Valid {
		t.Fatalf("valid = false: %s", rep.Reason)
	}
	if rep.Bottleneck != "rank" {
		t.Fatalf("bottleneck = %q, want rank", rep.Bottleneck)
	}
	if rep.Stages[0].Name != "rank" {
		t.Fatalf("top-ranked = %q, want rank", rep.Stages[0].Name)
	}
	// Sequential stages can never receive a context.
	for _, st := range rep.Stages {
		if (st.Name == "load" || st.Name == "out") && st.PayoffDoP != 0 {
			t.Fatalf("SEQ stage %q has DoP payoff %v", st.Name, st.PayoffDoP)
		}
	}
}

func TestWhatIfNotReadyInvalidates(t *testing.T) {
	in := twoStage()
	in[1].Ready = false
	rep := WhatIf(in)
	if rep.Valid {
		t.Fatal("report with an unready stage must be invalid")
	}
	if rep.Reason == "" {
		t.Fatal("invalid report must carry a reason")
	}
}

func TestWhatIfZeroServiceInvalidates(t *testing.T) {
	in := twoStage()
	in[0].ServiceTime = 0
	rep := WhatIf(in)
	if rep.Valid {
		t.Fatal("report with a zero service time must be invalid")
	}
}

func TestWhatIfScrubsNonFinite(t *testing.T) {
	in := twoStage()
	in[1].ServiceTime = math.Inf(1)
	rep := WhatIf(in)
	if rep.Valid {
		t.Fatal("non-finite inputs must invalidate the report")
	}
	for _, st := range rep.Stages {
		for _, v := range []float64{st.Demand, st.Utilization, st.PayoffDoP, st.PayoffService} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("stage %q leaked a non-finite figure", st.Name)
			}
		}
	}
	// The scrub guarantee is load-bearing for the admin endpoint: the report
	// must always marshal.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestWhatIfMaxDoPCapsPayoff(t *testing.T) {
	in := twoStage()
	in[1].MaxDoP = 1 // slow stage already at its cap
	rep := WhatIf(in)
	for _, st := range rep.Stages {
		if st.Name == "slow" && st.PayoffDoP != 0 {
			t.Fatalf("capped stage has DoP payoff %v", st.PayoffDoP)
		}
	}
}

func TestWhatIfEmpty(t *testing.T) {
	rep := WhatIf(nil)
	if rep.Valid {
		t.Fatal("empty input must be invalid")
	}
}

func TestWhatIfThroughputOverride(t *testing.T) {
	in := twoStage()
	base := WhatIfThroughput(in, nil)
	if math.Abs(base-250) > 1 {
		t.Fatalf("base = %v, want ~250", base)
	}
	// Doubling the slow stage's width moves the bottleneck to 2 ms demand.
	boosted := WhatIfThroughput(in, []int{0, 2})
	if boosted <= base {
		t.Fatalf("boosted = %v, not above base %v", boosted, base)
	}
	// Sequential stages ignore overrides.
	seq := twoStage()
	seq[1].Parallel = false
	if got := WhatIfThroughput(seq, []int{0, 8}); got != WhatIfThroughput(seq, nil) {
		t.Fatalf("SEQ override changed the model: %v", got)
	}
}

// TestRateReadyOnFirstFold pins the attribution bugfix: completions recorded
// through the lock-free slot path must yield a non-zero Rate() on the very
// first fold (anchored at the stage's first window open), not only after a
// second control tick establishes an inter-completion gap.
func TestRateReadyOnFirstFold(t *testing.T) {
	s := newStageStats(0.5)
	s.ObserveWorkerStart()
	rec := s.NewSlotRecorder()

	t0 := time.Unix(100, 0).UnixNano()
	for i := 0; i < 10; i++ {
		begin := t0 + int64(i)*int64(10*time.Millisecond)
		end := begin + int64(10*time.Millisecond)
		rec.ObserveBegin(begin)
		rec.ObserveEnd(int64(10*time.Millisecond), end)
	}
	// First getter read = first fold. Ten completions over 100 ms of working
	// time: ~100/s, not 0.
	if got := s.Rate(); math.Abs(got-100) > 5 {
		t.Fatalf("first-fold rate = %v, want ~100", got)
	}
	if got := s.MeanExecTime(); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("first-fold mean exec = %v, want 0.010", got)
	}
	if !s.Observed() {
		t.Fatal("stage with folded completions must report Observed")
	}
}

// TestObservedSentinel pins the not-ready sentinel: before any completion the
// getters return 0 and Observed() is false, so consumers can tell "no data"
// from "infinitely fast".
func TestObservedSentinel(t *testing.T) {
	s := newStageStats(0.5)
	if s.Observed() {
		t.Fatal("fresh stage must not report Observed")
	}
	// An open window alone is not a completion.
	s.ObserveWorkerStart()
	rec := s.NewSlotRecorder()
	rec.ObserveBegin(time.Unix(5, 0).UnixNano())
	if s.Observed() {
		t.Fatal("open window without completion must not report Observed")
	}
	if s.Rate() != 0 || s.MeanExecTime() != 0 {
		t.Fatal("unready stage getters must return 0")
	}
	rec.ObserveEnd(int64(time.Millisecond), time.Unix(5, 0).Add(time.Millisecond).UnixNano())
	if !s.Observed() {
		t.Fatal("completion must flip Observed")
	}
}

// TestFirstFoldAnchorClearsOnReset pins that a worker-less pause clears the
// first-begin anchor along with the rest of the gap state: the next
// instance's first fold anchors at its own first window, not the old one.
func TestFirstFoldAnchorClearsOnReset(t *testing.T) {
	s := newStageStats(0.5)
	s.ObserveWorkerStart()
	rec := s.NewSlotRecorder()
	t0 := time.Unix(100, 0).UnixNano()
	rec.ObserveBegin(t0)
	rec.ObserveEnd(int64(10*time.Millisecond), t0+int64(10*time.Millisecond))
	rec.Release()
	s.ObserveWorkerExit(false) // workers -> 0 resets the gap state

	// An hour later a new instance runs one 10 ms iteration. If the stale
	// anchor survived, the fold would observe ~1/3600 s and crater the EWMA.
	later := t0 + int64(time.Hour)
	s.ObserveWorkerStart()
	rec2 := s.NewSlotRecorder()
	rec2.ObserveBegin(later)
	rec2.ObserveEnd(int64(10*time.Millisecond), later+int64(10*time.Millisecond))
	if got := s.Rate(); math.Abs(got-100) > 5 {
		t.Fatalf("rate after pause = %v, want ~100", got)
	}
}

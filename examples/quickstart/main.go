// Quickstart: the smallest complete DoPE program.
//
// It declares a two-stage pipeline (produce → consume) once, without fixing
// any degree of parallelism, hands it to the executive with a
// "max throughput" goal, and lets the TBF mechanism discover that the
// consumer needs most of the workers. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"time"

	"dope"
	"dope/internal/queue"
)

func main() {
	const items = 400

	work := queue.New[int](0) // the application's work queue
	out := queue.New[int](64) // produce → consume
	var consumed int

	// The parallelism description: one loop, two interacting tasks. The
	// produce task is sequential; the consume task's DoP is left to DoPE.
	spec := &dope.NestSpec{Name: "quickstart", Alts: []*dope.AltSpec{{
		Name: "pipeline",
		Stages: []dope.StageSpec{
			{Name: "produce", Type: dope.SEQ},
			{Name: "consume", Type: dope.PAR},
		},
		Make: func(item any) (*dope.AltInstance, error) {
			out.Reopen() // reconfiguration drains and closes it; reuse
			return &dope.AltInstance{Stages: []dope.StageFns{
				{
					Fn: func(w *dope.Worker) dope.Status {
						v, ok, err := work.DequeueWhile(
							func() bool { return !w.Suspending() }, 0)
						if errors.Is(err, queue.ErrClosed) {
							return dope.Finished
						}
						if !ok {
							return dope.Suspended
						}
						// The item is already claimed: parse and forward it
						// before propagating a Suspended window.
						w.Begin()
						time.Sleep(200 * time.Microsecond) //dopevet:ignore tokenhold sleep simulates parse work in the example
						st := w.End()
						out.Enqueue(v)
						if st == dope.Suspended {
							return dope.Suspended
						}
						return dope.Executing
					},
					Load: func() float64 { return float64(work.Len()) },
					Fini: out.Close,
				},
				{
					Fn: func(w *dope.Worker) dope.Status {
						_, err := out.Dequeue()
						if err != nil {
							return dope.Finished
						}
						// Drain stage: exits via the queue closing so items
						// queued before a suspension are never lost.
						w.Begin()                        //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						time.Sleep(2 * time.Millisecond) //dopevet:ignore tokenhold sleep simulates transform work in the example
						consumed++
						w.End()
						return dope.Executing
					},
					Load: func() float64 { return float64(out.Len()) },
				},
			}}, nil
		},
	}}}

	// Launch under the executive: 8 hardware contexts, throughput goal.
	d, err := dope.Create(spec, dope.MaxThroughput(8),
		dope.WithControlInterval(20*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			if ev.Kind == dope.EventReconfigure {
				fmt.Printf("  [%.2fs] DoPE reconfigured: %s\n",
					ev.Time.Seconds(), ev.Config)
			}
		}))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly

	start := time.Now()
	for i := 0; i < items; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("consumed %d items in %v (%.0f items/s) with final config %s\n",
		consumed, elapsed.Round(time.Millisecond),
		float64(consumed)/elapsed.Seconds(), d.CurrentConfig())
}

// Wordcount: DoPE's generic pipeline builder on a classic streaming job.
//
// The paper observes that defining the task functors "is mechanical — it
// can be simplified with compiler support" (§3.1). dope.ChannelPipeline is
// that mechanical transformation as a library: declare the stages and
// their transforms, and the builder wires the queues, the suspension-aware
// head, the drain cascade, and the load callbacks. Here a three-stage
// text-processing pipeline (tokenize → count → merge) adapts under the
// throughput goal, discovering that the count stage needs the workers.
// Run with:
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dope"
)

// doc is one document flowing through the pipeline.
type doc struct {
	id     int
	text   string
	tokens []string
	counts map[string]int
}

var vocabulary = []string{
	"degree", "of", "parallelism", "executive", "task", "loop", "nest",
	"pipeline", "throughput", "latency", "thread", "queue", "monitor",
	"suspend", "resume", "configuration", "mechanism", "goal",
}

func synthesize(id int, rng *rand.Rand) doc {
	words := make([]string, 400)
	for i := range words {
		words[i] = vocabulary[rng.Intn(len(vocabulary))]
	}
	return doc{id: id, text: strings.Join(words, " ")}
}

func main() {
	const docs = 400

	var mu sync.Mutex
	global := map[string]int{}
	var completed int

	stages := []dope.PipeStage[doc]{
		{Name: "tokenize", Fn: func(d doc, extent int) doc {
			d.tokens = strings.Fields(d.text)
			return d
		}},
		{Name: "count", Par: true, Fn: func(d doc, extent int) doc {
			// The heavy stage: per-document counting plus a synthetic
			// skew so the stage dominates the pipeline.
			d.counts = make(map[string]int, len(vocabulary))
			for rep := 0; rep < 40; rep++ {
				for _, tok := range d.tokens {
					d.counts[tok]++
				}
			}
			return d
		}},
		{Name: "merge", Fn: func(d doc, extent int) doc {
			mu.Lock()
			for k, v := range d.counts {
				global[k] += v
			}
			completed++
			mu.Unlock()
			return d
		}},
	}

	src := make(chan doc, 64)
	spec := dope.ChannelPipeline("wordcount", src, stages, nil,
		dope.PipelineOptions{Fused: true})
	d, err := dope.Create(spec, dope.MaxThroughput(8),
		dope.WithControlInterval(10*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			if ev.Kind == dope.EventReconfigure {
				fmt.Printf("  [%.2fs] reconfigured: %s\n", ev.Time.Seconds(), ev.Config)
			}
		}))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly

	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for i := 0; i < docs; i++ {
		src <- synthesize(i, rng)
	}
	close(src)
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	total := 0
	for _, v := range global {
		total += v
	}
	fmt.Printf("counted %d tokens over %d documents in %v (%.0f docs/s), final config %s\n",
		total, completed, elapsed.Round(time.Millisecond),
		float64(completed)/elapsed.Seconds(), d.CurrentConfig())
	if completed != docs {
		panic("document lost in the pipeline")
	}
}

// Imagesearch: the ferret batch workload of §8.2.2 on the real runtime.
//
// A six-stage image-search pipeline (load → segment → extract → index →
// rank → out) with a heavily skewed rank stage processes a batch of
// queries. Run statically with an even thread distribution it starves the
// bottleneck; run under DoPE's TBF mechanism it is rebalanced — or fused
// into a single parallel task when the imbalance is unfixable — and
// throughput rises. Run with:
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"time"

	"dope"
	"dope/internal/apps"
)

const (
	threads = 24
	queries = 250
)

func main() {
	params := apps.FerretParams{UnitsBase: 120}

	staticTput := run("static even <1,5,5,5,6,1>", params, nil, []int{1, 5, 5, 5, 6, 1})
	tbfTput := run("DoPE-TBF", params, dope.Mechanisms.TBF(threads), []int{1, 1, 1, 1, 1, 1})

	fmt.Printf("\nTBF improvement over static even distribution: %.2fx\n", tbfTput/staticTput)
	fmt.Println("(the paper's Figure 15 reports DoPE-TBF as the best mechanism for ferret)")
}

func run(label string, params apps.FerretParams, mech dope.Mechanism, extents []int) float64 {
	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, params)
	goal := dope.StaticGoal(threads)
	if mech != nil {
		goal = dope.CustomGoal("max-throughput", threads, mech)
	}
	d, err := dope.Create(spec, goal,
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: extents}),
		dope.WithControlInterval(10*time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly
	start := time.Now()
	for i := 0; i < queries; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	tput := float64(queries) / time.Since(start).Seconds()
	fmt.Printf("%-28s %6.1f queries/s  (final %s)\n", label, tput, d.CurrentConfig())
	return tput
}

// Powercap: §8.2.3 — maximize throughput under a watt budget.
//
// The ferret pipeline runs under the TPC controller with the simulated
// power substrate (linear CPU power model, observed through a rate-limited
// PDU, as with the paper's APC AP7892). TPC ramps the DoP until the budget
// binds, explores same-size configurations, and stabilizes. Run with:
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"time"

	"dope"
	"dope/internal/apps"
	"dope/internal/platform"
)

func main() {
	const (
		threads = 24
		queries = 250
	)
	budget := 0.9 * 800.0 // 90% of peak, as in the paper's Figure 14

	s := apps.NewServer(nil)
	spec := apps.NewFerret(s, apps.FerretParams{UnitsBase: 120})
	d, err := dope.Create(spec, dope.MaxThroughputUnderPower(threads, budget),
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: []int{1, 1, 1, 1, 1, 1}}),
		dope.WithControlInterval(25*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			if ev.Kind == dope.EventReconfigure {
				fmt.Printf("  [%.2fs] TPC: %s\n", ev.Time.Seconds(), ev.Config)
			}
		}))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly
	// The live run lasts seconds, so sample the PDU every 50 ms instead of
	// the paper's 13 samples/minute (which would never refresh here).
	model := d.RegisterPowerModel(50 * time.Millisecond)
	fmt.Printf("power model: idle %.0f W, peak %.0f W, budget %.0f W (=%d contexts)\n",
		model.Idle(), model.Peak(), budget, model.BudgetToContexts(budget))

	start := time.Now()
	for i := 0; i < queries; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	finalPower, _ := d.Features().Value(platform.FeatureSystemPower)
	fmt.Printf("\nserved %d queries at %.1f/s; final power %.0f W (budget %.0f W); %d reconfigurations; final %s\n",
		queries, float64(queries)/time.Since(start).Seconds(),
		finalPower, budget, d.Reconfigurations(), d.CurrentConfig())
}

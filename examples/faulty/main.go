// Faulty: failure policies keeping a service alive through bad requests.
//
// A four-worker service drains a queue of requests, but every 50th request
// is malformed and makes the worker functor panic. The same service runs
// under each failure policy:
//
//   - fail-stop (the default): the first panic surfaces as the run error
//     and the whole service shuts down;
//   - fail-restart: the executive captures the panic, respawns the worker
//     slot after a short backoff, and the batch completes;
//   - fail-degrade: each panic permanently retires the failing slot and
//     shrinks the stage's extent in the active configuration — visible to
//     mechanisms, which may grow it back later.
//
// Run with:
//
//	go run ./examples/faulty
package main

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"dope"
	"dope/internal/queue"
)

const (
	requests  = 400
	poisonMod = 100 // request IDs divisible by this panic
)

// newService declares the parallelism once; the failure policy is the only
// thing that differs between runs.
func newService(policy dope.FailurePolicy, work *queue.Queue[int], served *atomic.Int64) *dope.NestSpec {
	return &dope.NestSpec{Name: "svc", Alts: []*dope.AltSpec{{
		Name: "doall",
		Stages: []dope.StageSpec{{
			Name:      "worker",
			Type:      dope.PAR,
			OnFailure: policy,
		}},
		Make: func(item any) (*dope.AltInstance, error) {
			return &dope.AltInstance{Stages: []dope.StageFns{{
				Fn: func(w *dope.Worker) dope.Status {
					if w.Suspending() {
						return dope.Suspended
					}
					id, ok, err := work.DequeueWhile(
						func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return dope.Finished
					}
					if !ok {
						return dope.Suspended
					}
					if id > 0 && id%poisonMod == 0 {
						panic(fmt.Sprintf("malformed request %d", id))
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					time.Sleep(300 * time.Microsecond) //dopevet:ignore tokenhold sleep simulates request work in the example
					served.Add(1)
					w.End()
					return dope.Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func runPolicy(policy dope.FailurePolicy) {
	fmt.Printf("-- policy %s --\n", policy)
	work := queue.New[int](0)
	var served atomic.Int64
	spec := newService(policy, work, &served)
	d, err := dope.Create(spec, dope.StaticGoal(8),
		dope.WithInitialConfig(&dope.Config{Alt: 0, Extents: []int{6}}),
		dope.WithFailureBudget(16, time.Second),
		dope.WithRestartBackoff(500*time.Microsecond, 10*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			switch ev.Kind {
			case dope.EventTaskFailure:
				// The captured stack pinpoints the panic site; show its head.
				site := strings.SplitN(ev.Stack, "\n", 2)[0]
				fmt.Printf("  [%.2fs] task failure in %s/%s handled by %s (failure %d in window): %s\n",
					ev.Time.Seconds(), ev.Nest, ev.Stage, ev.Policy, ev.Failures, site)
			case dope.EventResize:
				fmt.Printf("  [%.2fs] stage %s extent %d -> %d (%s)\n",
					ev.Time.Seconds(), ev.Stage, ev.FromExtent, ev.ToExtent, ev.Mechanism)
			}
		}))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly
	for i := 1; i <= requests; i++ {
		work.Enqueue(i)
	}
	work.Close()
	err = d.Destroy()
	switch {
	case err != nil:
		fmt.Printf("  service died after %d/%d requests: %v\n",
			served.Load(), requests, firstLine(err))
	default:
		fmt.Printf("  served %d/%d requests (%d absorbed panics), final config %s\n",
			served.Load(), requests, d.TaskFailures(), d.CurrentConfig())
	}
	fmt.Println()
}

// firstLine trims an error carrying a multi-line stack to its first line.
func firstLine(err error) string {
	return strings.SplitN(err.Error(), "\n", 2)[0]
}

func main() {
	for _, policy := range []dope.FailurePolicy{
		dope.FailStop, dope.FailRestart, dope.FailDegrade,
	} {
		runPolicy(policy)
	}
	fmt.Println("fail-stop loses the service to one bad request; fail-restart absorbs")
	fmt.Println("every panic; fail-degrade trades workers for survival and leaves the")
	fmt.Println("shrink visible for a mechanism to undo.")
}

// Loadswing: the paper's §2 motivation live — workload variability forces
// reconfiguration.
//
// A transcoding service experiences a day-in-the-life load pattern: light
// traffic, a surge to near saturation, then light again. The WQT-H
// mechanism's two-state machine responds exactly as §7.1 describes: in the
// light phases it transcodes each video with a wide inner pipeline
// (latency mode); when the surge fills the work queue it flips to
// sequential inner transcodes on every context (throughput mode); when the
// surge passes it flips back. Run with:
//
//	go run ./examples/loadswing
package main

import (
	"fmt"
	"time"

	"dope"
	"dope/internal/apps"
	"dope/internal/workload"
)

const (
	threads = 24
	mmax    = 8
)

func main() {
	params := apps.TranscodeParams{Frames: 8, UnitsPerFrame: 2000}
	s := apps.NewServer(nil)
	spec := apps.NewTranscode(s, params)

	var flips int
	d, err := dope.Create(spec, dope.MinResponseTimeWQTH(threads, mmax, 6),
		dope.WithControlInterval(5*time.Millisecond),
		dope.WithTrace(func(ev dope.Event) {
			if ev.Kind == dope.EventReconfigure {
				flips++
				mode := "latency mode (wide inner pipelines)"
				if ev.Config.Extents[0] >= threads {
					mode = "throughput mode (sequential inner)"
				}
				fmt.Printf("  [%.2fs] WQT-H -> %s: %s\n", ev.Time.Seconds(), mode, ev.Config)
			}
		}))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly

	// Calibrated offline: ~20 ms per fused transcode on 24 contexts.
	maxTp := float64(threads) / 0.020
	phases := []struct {
		name string
		lf   float64
		n    int
	}{
		{"light", 0.2, 25},
		{"surge", 1.1, 80},
		{"light again", 0.2, 25},
	}
	for _, ph := range phases {
		fmt.Printf("phase: %s (load factor %.1f, %d videos)\n", ph.name, ph.lf, ph.n)
		arr := workload.NewArrivals(workload.LoadFactor(ph.lf).RateFor(maxTp), 99)
		for i := 0; i < ph.n; i++ {
			time.Sleep(arr.Next())
			s.Submit(1.0)
		}
	}
	s.Close()
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	p95, _ := s.Resp.Percentile(95)
	fmt.Printf("\nserved %d videos: mean response %.1f ms (p95 %.1f ms), %d reconfigurations\n",
		int(s.Resp.Count()), s.Resp.MeanResponse()*1000, p95*1000, flips)
	fmt.Println("the same application code served both regimes; only the configuration moved.")
}

// Multitenant: three services on one machine under the tenancy arbiter —
// and two of them are misbehaving.
//
// A shared 4-context pool serves three tenants:
//
//   - "alpha" takes a 1% injected panic rate (a crashing request handler);
//   - "bravo" takes a 1% injected stall rate (requests wedging on dead I/O,
//     unwedged by the per-stage deadline watchdog);
//   - "clean" is well-behaved and must not notice either neighbor.
//
// The arbiter grants each tenant a context quota by weighted fair share,
// reclaims idle quota for whoever demands it, and contains each tenant's
// failures to its own slice of the machine: a panic or stall burns only the
// failing tenant's budget and tokens, never a neighbor's Begin fast path.
// The exit status asserts the isolation counters, which makes this example
// double as the chaos smoke test in CI.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dope/internal/core"
	"dope/internal/faults"
	"dope/internal/platform"
	"dope/internal/queue"
	"dope/internal/tenancy"
)

const (
	contexts  = 4
	perTenant = 300
	faultRate = 0.01
)

// tenantWorkload is one tenant's service: a PAR stage draining a request
// queue, resilient to injected faults via fail-restart and a deadline.
type tenantWorkload struct {
	name   string
	work   *queue.Queue[int]
	served atomic.Int64
	spec   *core.NestSpec
}

func newWorkload(name string) *tenantWorkload {
	t := &tenantWorkload{name: name, work: queue.New[int](0)}
	t.spec = &core.NestSpec{Name: name, Alts: []*core.AltSpec{{
		Name: "doall",
		Stages: []core.StageSpec{{
			Name:      "worker",
			Type:      core.PAR,
			OnFailure: core.FailRestart,
			// Generous budget: the injected faults are the norm here, not
			// a stage gone rogue.
			FailureBudget: 1 << 16,
			FailureWindow: time.Minute,
			// The stall watchdog's bound: a wedged request is abandoned
			// within this deadline and its context token reclaimed.
			Deadline: 25 * time.Millisecond,
		}},
		Make: func(item any) (*core.AltInstance, error) {
			return &core.AltInstance{Stages: []core.StageFns{{
				Fn: func(w *core.Worker) core.Status {
					if w.Suspending() {
						return core.Suspended
					}
					_, ok, err := t.work.DequeueWhile(
						func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return core.Finished
					}
					if !ok {
						return core.Suspended
					}
					w.Begin()                          //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					time.Sleep(200 * time.Microsecond) //dopevet:ignore tokenhold sleep simulates request work in the example
					t.served.Add(1)
					w.End()
					return core.Executing
				},
				Load: func() float64 { return float64(t.work.Len()) },
			}}}, nil
		},
	}}}
	return t
}

func main() {
	pool := platform.NewContexts(contexts)
	arb := tenancy.New(pool,
		tenancy.WithTickInterval(2*time.Millisecond),
		tenancy.WithDrainTimeout(100*time.Millisecond))
	defer arb.Close()

	alpha := newWorkload("alpha")
	bravo := newWorkload("bravo")
	clean := newWorkload("clean")

	// Chaos: 1% of alpha's requests panic, 1% of bravo's wedge forever
	// inside their CPU section until the deadline watchdog abandons them.
	faults.New(faultRate, 1, faults.WithKind(faults.Panic)).WrapNest(alpha.spec, "worker")
	faults.New(faultRate, 2, faults.WithKind(faults.Stall)).WrapNest(bravo.spec, "worker")

	tenants := make(map[string]*tenancy.Tenant, 3)
	for _, wl := range []*tenantWorkload{alpha, bravo, clean} {
		tn, err := arb.Register(tenancy.TenantSpec{
			Name:        wl.name,
			Root:        wl.spec,
			Weight:      1,
			MinContexts: 1,
			MaxContexts: contexts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "register %s: %v\n", wl.name, err)
			os.Exit(1)
		}
		tenants[wl.name] = tn
	}

	// Ctrl-C stops every tenant's executive through the drain protocol so
	// the Wait loop below returns and the isolation report still prints.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		signal.Stop(sig)
		for _, tn := range tenants {
			tn.Exec().Stop()
		}
	}()

	for _, wl := range []*tenantWorkload{alpha, bravo, clean} {
		for i := 1; i <= perTenant; i++ {
			wl.work.Enqueue(i)
		}
		wl.work.Close()
	}

	ok := true
	for _, wl := range []*tenantWorkload{alpha, bravo, clean} {
		tn := tenants[wl.name]
		if err := tn.Exec().Wait(); err != nil {
			fmt.Printf("tenant %s died: %v\n", wl.name, err)
			ok = false
			continue
		}
		// The arbiter's watcher observes the finish asynchronously; give
		// the state a beat to settle before reporting it.
		for end := time.Now().Add(time.Second); tn.State() == tenancy.Running && time.Now().Before(end); {
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("tenant %-5s served %d/%d  panics=%d stalls=%d  state=%v\n",
			wl.name, wl.served.Load(), perTenant,
			tn.Exec().TaskFailures(), tn.Exec().TaskStalls(), tn.State())
	}

	// Isolation counters: the chaos stayed inside alpha and bravo, the
	// clean tenant served everything, and every context token came home.
	if clean.served.Load() != perTenant {
		fmt.Printf("isolation VIOLATED: clean tenant served %d/%d\n", clean.served.Load(), perTenant)
		ok = false
	}
	if tenants["clean"].Exec().TaskFailures() != 0 || tenants["clean"].Exec().TaskStalls() != 0 {
		fmt.Println("isolation VIOLATED: chaos leaked into the clean tenant")
		ok = false
	}
	if tenants["alpha"].Exec().TaskFailures() == 0 {
		fmt.Println("chaos MISSING: no panics landed in alpha")
		ok = false
	}
	if tenants["bravo"].Exec().TaskStalls() == 0 {
		fmt.Println("chaos MISSING: no stalls landed in bravo")
		ok = false
	}
	if busy := pool.Busy(); busy != 0 {
		fmt.Printf("isolation VIOLATED: %d context tokens still out after all tenants finished\n", busy)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("isolation ok: %d faults contained per misbehaving tenant's own quota, 0 leaked, pool drained\n",
		tenants["alpha"].Exec().TaskFailures()+tenants["bravo"].Exec().TaskStalls())
}

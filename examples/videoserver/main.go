// Videoserver: the paper's running example (§2, Figures 1–7) end to end.
//
// A transcoding service receives videos with Poisson arrivals. Each video
// can be transcoded by an inner read|transform|write pipeline (low latency,
// lower efficiency) or by a fused sequential transcoder (best throughput).
// The WQ-Linear mechanism continuously trades the two off against the work
// queue's occupancy, so response time stays near the per-load optimum as
// the load sweeps from light to heavy. Run with:
//
//	go run ./examples/videoserver
package main

import (
	"fmt"
	"time"

	"dope"
	"dope/internal/apps"
	"dope/internal/workload"
)

const (
	threads = 24
	videos  = 50
	mmax    = 8
)

var params = apps.TranscodeParams{Frames: 8, UnitsPerFrame: 2000}

func main() {
	// Calibrate maximum throughput the paper's way (§8.2): N videos run
	// concurrently, each transcoded sequentially; maxTp = N/T.
	maxTp := calibrate()
	fmt.Printf("calibration: max throughput %.0f videos/s with sequential-inner transcodes\n", maxTp)

	for _, lf := range []float64{0.3, 0.9} {
		s := apps.NewServer(nil)
		spec := apps.NewTranscode(s, params)
		d, err := dope.Create(spec, dope.MinResponseTime(threads, mmax, 10),
			dope.WithControlInterval(5*time.Millisecond))
		if err != nil {
			panic(err)
		}
		stop := d.StopOnInterrupt() // Ctrl-C: stop feeding, drain, exit
		arr := workload.NewArrivals(workload.LoadFactor(lf).RateFor(maxTp), 42)
	feed:
		for i := 0; i < videos; i++ {
			select {
			case <-d.Done():
				break feed
			case <-time.After(arr.Next()):
			}
			s.Submit(1.0)
		}
		s.Close()
		if err := d.Destroy(); err != nil {
			panic(err)
		}
		stop()
		p95, _ := s.Resp.Percentile(95)
		fmt.Printf("load %.1f: mean response %6.1f ms (p95 %6.1f ms), exec %5.1f ms, wait %5.1f ms, %d reconfigurations, final %s\n",
			lf, s.Resp.MeanResponse()*1000, p95*1000,
			s.Resp.MeanExec()*1000, s.Resp.MeanWait()*1000,
			d.Reconfigurations(), d.CurrentConfig())
	}
	fmt.Println("expected shape: light load runs the inner pipeline wide (low exec time);")
	fmt.Println("heavy load degrades toward sequential inner transcodes (higher exec, lower wait).")
}

// calibrate measures N/T with the static throughput-optimal configuration.
func calibrate() float64 {
	const n = 72
	s := apps.NewServer(nil)
	spec := apps.NewTranscode(s, params)
	cfg := dope.DefaultConfig(spec)
	cfg.Extents[0] = threads
	cfg.Child("video").Alt = 1 // fused sequential transcode
	d, err := dope.Create(spec, dope.StaticGoal(threads), dope.WithInitialConfig(cfg))
	if err != nil {
		panic(err)
	}
	defer d.StopOnInterrupt()() // Ctrl-C: drain the nest, then exit cleanly
	start := time.Now()
	for i := 0; i < n; i++ {
		s.Submit(1.0)
	}
	s.Close()
	if err := d.Destroy(); err != nil {
		panic(err)
	}
	return float64(n) / time.Since(start).Seconds()
}

// Package dope is the public API of the Degree of Parallelism Executive, a
// runtime system that separates the concern of exposing parallelism from
// the concern of optimizing it (Raman, Kim, Oh, Lee, August: "Parallelism
// Orchestration using DoPE: the Degree of Parallelism Executive", PLDI
// 2011).
//
// # The three agents
//
// The application developer declares every parallelization of the program's
// loop nest once, as a tree of NestSpecs, deliberately not fixing any
// degree of parallelism (DoP):
//
//	inner := &dope.NestSpec{Name: "video", Alts: []*dope.AltSpec{
//	    {Name: "pipeline", Stages: ..., Make: ...}, // read|transform|write
//	    {Name: "fused",    Stages: ..., Make: ...}, // sequential transcode
//	}}
//	root := &dope.NestSpec{Name: "transcode", Alts: []*dope.AltSpec{{
//	    Name:   "outer",
//	    Stages: []dope.StageSpec{{Name: "serve", Type: dope.PAR, Nest: inner}},
//	    Make:   ...,
//	}}}
//
// The administrator states a performance goal:
//
//	d, err := dope.Create(root, dope.MinResponseTime(24))
//
// The mechanism developer implements Mechanisms (see internal/mechanism for
// the shipped catalog — the paper's six plus Proportional, LoadProportional, and EDP) that continuously recompute the parallelism
// configuration from monitored application features (per-task execution
// time and load) and platform features (hardware contexts, power).
//
// Functors bracket their CPU-intensive section with Worker.Begin/End, run
// nested loops with Worker.RunNest, and return Finished at the loop exit
// branch, Suspended when the executive requests reconfiguration, and
// Executing otherwise — the control-flow duplication of the paper's
// Figure 4.
package dope

import (
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dope/internal/admin"
	"dope/internal/core"
	"dope/internal/mechanism"
	"dope/internal/metrics"
	"dope/internal/monitor"
	"dope/internal/platform"
	"dope/internal/power"
)

// Re-exported model types; see package core for full documentation.
type (
	// Status is a task's per-iteration result (EXECUTING | SUSPENDED |
	// FINISHED).
	Status = core.Status
	// TaskType marks a stage SEQ or PAR.
	TaskType = core.TaskType
	// NestSpec describes one parallelized loop and its alternatives.
	NestSpec = core.NestSpec
	// AltSpec is one alternative parallelization (a ParDescriptor).
	AltSpec = core.AltSpec
	// StageSpec statically describes one task of an alternative.
	StageSpec = core.StageSpec
	// StageFns carries a stage instance's functor and callbacks.
	StageFns = core.StageFns
	// AltInstance is a fresh instantiation of an alternative.
	AltInstance = core.AltInstance
	// Worker is the per-goroutine task context (Begin/End/RunNest).
	Worker = core.Worker
	// Functor is one iteration of a task loop body.
	Functor = core.Functor
	// Config is a concrete parallelism configuration.
	Config = core.Config
	// Mechanism adapts configurations to meet a goal.
	Mechanism = core.Mechanism
	// Report is the monitoring snapshot given to mechanisms.
	Report = core.Report
	// NestReport and StageReport are Report components.
	NestReport = core.NestReport
	// StageReport is the monitored view of one stage.
	StageReport = core.StageReport
	// Event is an executive trace record.
	Event = core.Event
	// EventKind classifies trace records.
	EventKind = core.EventKind
	// FailurePolicy selects how the executive reacts to a panicking stage
	// functor (StageSpec.OnFailure, WithFailurePolicy).
	FailurePolicy = core.FailurePolicy
	// TaskContext is the cooperative cancellation handle of one invocation
	// (Worker.Context); its Done channel closes when the slot is abandoned.
	TaskContext = core.TaskContext
	// WhatIfReport is the causal what-if profile of one nest's stages:
	// virtual speedups predicting the throughput payoff of one more
	// context (or a faster stage), computed from live measurements by
	// Report.WhatIf / NestReport.WhatIf and served at GET /whatif.
	WhatIfReport = monitor.WhatIfReport
	// WhatIfStage is one stage's row in a WhatIfReport ranking.
	WhatIfStage = monitor.WhatIfStage
)

// Task status values.
const (
	Executing = core.Executing
	Suspended = core.Suspended
	Finished  = core.Finished
)

// Task types.
const (
	SEQ = core.SEQ
	PAR = core.PAR
)

// Event kinds.
const (
	EventReconfigure = core.EventReconfigure
	EventResize      = core.EventResize
	EventSuspend     = core.EventSuspend
	EventResume      = core.EventResume
	EventFinish      = core.EventFinish
	EventError       = core.EventError
	EventTaskFailure = core.EventTaskFailure
	EventTaskStall   = core.EventTaskStall
	EventShed        = core.EventShed
)

// Failure policies (see DESIGN.md "Failure semantics"): FailStop surfaces
// the first functor panic as the run error and shuts down (the default);
// FailRestart respawns the failed worker slot, with a per-stage failure
// budget and exponential backoff before escalating to FailStop; FailDegrade
// retires the failed slot and shrinks the stage's extent, leaving re-growth
// to the mechanism. FailDefault defers to the executive-wide policy.
const (
	FailDefault = core.FailDefault
	FailStop    = core.FailStop
	FailRestart = core.FailRestart
	FailDegrade = core.FailDegrade
)

// Option configures the executive; re-exported from core.
type Option = core.Option

// Re-exported executive options.
var (
	// WithContexts sets the number of hardware contexts.
	WithContexts = core.WithContexts
	// WithContextPool shares a caller-owned context pool.
	WithContextPool = core.WithContextPool
	// WithMechanism overrides the goal's mechanism.
	WithMechanism = core.WithMechanism
	// WithControlInterval sets the mechanism consultation period.
	WithControlInterval = core.WithControlInterval
	// WithMonitorAlpha sets monitor EWMA smoothing.
	WithMonitorAlpha = core.WithMonitorAlpha
	// WithClock substitutes the clock.
	WithClock = core.WithClock
	// WithTrace installs an event callback.
	WithTrace = core.WithTrace
	// WithInitialConfig sets the starting configuration.
	WithInitialConfig = core.WithInitialConfig
	// WithFeatures installs a caller-owned feature registry.
	WithFeatures = core.WithFeatures
	// WithWholeNestRespawn restores the legacy suspend-on-any-root-change
	// behavior (A/B baseline for in-place resizing).
	WithWholeNestRespawn = core.WithWholeNestRespawn
	// WithProtocolCheck makes workers panic on Begin/End protocol misuse
	// (double Begin, End without Begin, RunNest while holding); the panic
	// surfaces as a run error. DOPE_DEBUG=1 enables it too. The static
	// counterpart is cmd/dope-vet.
	WithProtocolCheck = core.WithProtocolCheck
	// WithFailurePolicy sets the executive-wide default failure policy for
	// stages whose spec leaves OnFailure as FailDefault.
	WithFailurePolicy = core.WithFailurePolicy
	// WithFailureBudget bounds FailRestart: more than n failures within a
	// rolling window escalate the stage to FailStop.
	WithFailureBudget = core.WithFailureBudget
	// WithRestartBackoff sets the FailRestart backoff: base doubles per
	// failure in the window, capped at max.
	WithRestartBackoff = core.WithRestartBackoff
	// WithDeadline sets the executive-wide default invocation deadline for
	// stages whose spec leaves Deadline zero; the stall watchdog applies the
	// stage's failure policy to any Begin/End window that outlives it.
	WithDeadline = core.WithDeadline
	// WithDrainTimeout bounds every suspend drain (reconfiguration or Stop);
	// on expiry the straggling slots are escalated per their failure policy
	// instead of wedging Wait forever.
	WithDrainTimeout = core.WithDrainTimeout
	// WithStallCheckInterval overrides the watchdog polling period (default:
	// a quarter of the tightest deadline, clamped to [100µs, 25ms]).
	WithStallCheckInterval = core.WithStallCheckInterval
)

// DefaultConfig returns alternative 0 with extent 1 everywhere.
func DefaultConfig(spec *NestSpec) *Config { return core.DefaultConfig(spec) }

// Demand returns the peak hardware-context demand of a configuration.
func Demand(spec *NestSpec, cfg *Config) int { return core.Demand(spec, cfg) }

// DoPE is a running executive instance.
type DoPE struct {
	*core.Exec
	goalMu sync.Mutex
	goal   Goal
}

// Goal is the administrator's performance objective plus resource
// constraints (§4): a thread budget, an optional power budget, and the
// mechanism that pursues the objective.
type Goal struct {
	// Name describes the goal for traces.
	Name string
	// Threads is the hardware-thread budget N.
	Threads int
	// PowerBudget is the watt constraint (0 = unconstrained).
	PowerBudget float64
	// Mechanism pursues the objective; nil leaves the configuration static.
	Mechanism Mechanism
}

// MinResponseTime is the goal "minimize response time with N threads"
// (§7.1). The default mechanism is WQ-Linear, the paper's best performer;
// tune it with the Mmax/Qmax arguments of Mechanisms.WQLinear and override
// via WithMechanism if needed. mmax is the inner-loop extent at the
// parallel-efficiency knee; qmax the queue occupancy at which the inner
// loop degrades to sequential.
func MinResponseTime(threads, mmax int, qmax float64) Goal {
	return Goal{
		Name:    "min-response-time",
		Threads: threads,
		Mechanism: &mechanism.WQLinear{
			Threads: threads, Mmax: mmax, Mmin: 1, Qmax: qmax,
		},
	}
}

// MinResponseTimeWQTH is MinResponseTime with the two-state WQT-H
// mechanism; threshold is the work-queue occupancy T.
func MinResponseTimeWQTH(threads, mmax int, threshold float64) Goal {
	return Goal{
		Name:    "min-response-time",
		Threads: threads,
		Mechanism: &mechanism.WQTH{
			Threads: threads, Mmax: mmax, Threshold: threshold,
		},
	}
}

// MaxThroughput is the goal "maximize throughput with N threads" (§7.2);
// the default mechanism is TBF (throughput balance with task fusion).
func MaxThroughput(threads int) Goal {
	return Goal{
		Name:      "max-throughput",
		Threads:   threads,
		Mechanism: &mechanism.TBF{Threads: threads},
	}
}

// MaxThroughputUnderPower is the goal "maximize throughput with N threads,
// P watts" (§7.3), pursued by the TPC closed-loop controller over the
// SystemPower platform feature.
func MaxThroughputUnderPower(threads int, watts float64) Goal {
	return Goal{
		Name:        "max-throughput-under-power",
		Threads:     threads,
		PowerBudget: watts,
		Mechanism:   &mechanism.TPC{Threads: threads, Budget: watts},
	}
}

// MinEnergyDelay is the goal "minimize the energy-delay product", the
// administrator-invented goal the paper's §4 gives as an example of what
// the separation of concerns enables. It requires a SystemPower feature
// (see RegisterPowerModel); without one it degenerates to throughput
// maximization.
func MinEnergyDelay(threads int) Goal {
	return Goal{
		Name:      "min-energy-delay",
		Threads:   threads,
		Mechanism: &mechanism.EDP{Threads: threads},
	}
}

// StaticGoal pins the supplied configuration: no adaptation. This is the
// baseline mode of the paper's evaluation.
func StaticGoal(threads int) Goal {
	return Goal{Name: "static", Threads: threads}
}

// CustomGoal wires an arbitrary mechanism, for mechanism developers.
func CustomGoal(name string, threads int, m Mechanism) Goal {
	return Goal{Name: name, Threads: threads, Mechanism: m}
}

// Create validates the parallelism description, builds the executive for
// the given goal, and starts application execution (the paper's
// DoPE::create). Additional options may refine the platform.
func Create(root *NestSpec, goal Goal, opts ...Option) (*DoPE, error) {
	all := make([]Option, 0, len(opts)+2)
	if goal.Threads > 0 {
		all = append(all, WithContexts(goal.Threads))
	}
	if goal.Mechanism != nil {
		all = append(all, WithMechanism(goal.Mechanism))
	}
	all = append(all, opts...)
	exec, err := core.New(root, all...)
	if err != nil {
		return nil, err
	}
	d := &DoPE{Exec: exec, goal: goal}
	if err := exec.Start(); err != nil {
		return nil, err
	}
	return d, nil
}

// Goal returns the current performance goal.
func (d *DoPE) Goal() Goal {
	d.goalMu.Lock()
	defer d.goalMu.Unlock()
	return d.goal
}

// SetGoal installs a new performance goal on the running system — the
// paper's administrator changing what the same application optimizes for
// without touching its code (§4). The goal's mechanism takes over at the
// next control tick; a static goal freezes the current configuration.
func (d *DoPE) SetGoal(g Goal) {
	d.goalMu.Lock()
	d.goal = g
	d.goalMu.Unlock()
	d.SetMechanism(g.Mechanism)
}

// Destroy waits for registered tasks to end and finalizes the run-time
// system (the paper's DoPE::destroy). It returns the first task error.
func (d *DoPE) Destroy() error { return d.Wait() }

// StopOnInterrupt installs a SIGINT/SIGTERM handler that stops the nest:
// the current run is suspended through the normal drain protocol and not
// respawned, so a pending Destroy/Wait returns and deferred cleanup
// (recorder flushes, admin shutdown) runs. A second signal restores the
// default disposition, so a stuck drain can still be killed with another
// Ctrl-C. The returned release removes the handler; releasing after a
// signal fired is a no-op.
func (d *DoPE) StopOnInterrupt() (release func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	quit := make(chan struct{})
	var once sync.Once
	release = func() {
		once.Do(func() {
			signal.Stop(ch)
			close(quit)
		})
	}
	go func() {
		select {
		case <-quit:
			return
		case <-ch:
		}
		signal.Stop(ch) // second signal falls through to the default action
		d.Stop()
	}()
	return release
}

// AttachCollector starts a live-ops metrics collector on this executive:
// it taps the trace event stream for the decision log and samples Report
// into ring-buffered time series (window points each) every interval.
// Sampling runs off the hot path — Begin/End never blocks on it. The
// returned release detaches the tap, stops the sampler, and closes the
// collector; pass the collector to AdminHandlerWithCollector to serve it
// at GET /series for dope-top.
func (d *DoPE) AttachCollector(window int, interval time.Duration) (*metrics.Collector, func()) {
	col := metrics.NewCollector(window)
	detach := col.Attach(d.Exec, interval)
	return col, func() {
		detach()
		col.Close()
	}
}

// Mechanisms exposes the shipped mechanism constructors so applications and
// experiments can assemble goals beyond the defaults. Each field mirrors a
// mechanism of the paper's §7; see package internal/mechanism.
var Mechanisms = struct {
	Proportional func(threads int) Mechanism
	WQTH         func(threads, mmax int, threshold float64) Mechanism
	WQLinear     func(threads, mmax int, qmax float64) Mechanism
	TB           func(threads int) Mechanism
	TBF          func(threads int) Mechanism
	FDP          func(threads int) Mechanism
	SEDA         func(highWater, lowWater float64) Mechanism
	TPC          func(threads int, watts float64) Mechanism
	EDP          func(threads int) Mechanism
	LoadProp     func(threads int) Mechanism
	Gradient     func(threads int) Mechanism
}{
	Proportional: func(threads int) Mechanism { return &mechanism.Proportional{Threads: threads} },
	WQTH: func(threads, mmax int, threshold float64) Mechanism {
		return &mechanism.WQTH{Threads: threads, Mmax: mmax, Threshold: threshold}
	},
	WQLinear: func(threads, mmax int, qmax float64) Mechanism {
		return &mechanism.WQLinear{Threads: threads, Mmax: mmax, Mmin: 1, Qmax: qmax}
	},
	TB:  func(threads int) Mechanism { return &mechanism.TBF{Threads: threads, DisableFusion: true} },
	TBF: func(threads int) Mechanism { return &mechanism.TBF{Threads: threads} },
	FDP: func(threads int) Mechanism { return &mechanism.FDP{Threads: threads} },
	SEDA: func(highWater, lowWater float64) Mechanism {
		return &mechanism.SEDA{HighWater: highWater, LowWater: lowWater}
	},
	TPC: func(threads int, watts float64) Mechanism {
		return &mechanism.TPC{Threads: threads, Budget: watts}
	},
	EDP: func(threads int) Mechanism { return &mechanism.EDP{Threads: threads} },
	LoadProp: func(threads int) Mechanism {
		return &mechanism.LoadProportional{Threads: threads}
	},
	Gradient: func(threads int) Mechanism {
		return &mechanism.Gradient{Threads: threads}
	},
}

// AdminHandler returns an HTTP handler exposing the administrator's
// console for this running system (§4): GET/PUT /config, GET/PUT
// /mechanism (by catalog name, or "static"), GET /report, GET /stats,
// GET /whatif (the live causal what-if profile), GET /healthz. Mount it
// behind a server with sane timeouts, e.g.:
//
//	go admin.NewServer("localhost:7117", d.AdminHandler()).ListenAndServe()
func (d *DoPE) AdminHandler() http.Handler { return d.AdminHandlerWithCollector(nil) }

// AdminHandlerWithCollector is AdminHandler plus GET /series backed by a
// collector from AttachCollector — the ring-buffered time-series feed
// dope-top polls. With a nil collector, /series answers 404.
func (d *DoPE) AdminHandlerWithCollector(col *metrics.Collector) http.Handler {
	threads := d.Goal().Threads
	if threads <= 0 {
		threads = d.Contexts().N()
	}
	factories := map[string]admin.MechanismFactory{
		"proportional": func() Mechanism { return Mechanisms.Proportional(threads) },
		"wqth":         func() Mechanism { return Mechanisms.WQTH(threads, 8, 6) },
		"wqlinear":     func() Mechanism { return Mechanisms.WQLinear(threads, 8, 14) },
		"tb":           func() Mechanism { return Mechanisms.TB(threads) },
		"tbf":          func() Mechanism { return Mechanisms.TBF(threads) },
		"fdp":          func() Mechanism { return Mechanisms.FDP(threads) },
		"seda":         func() Mechanism { return Mechanisms.SEDA(8, 1) },
		"tpc":          func() Mechanism { return Mechanisms.TPC(threads, d.Goal().PowerBudget) },
		"edp":          func() Mechanism { return Mechanisms.EDP(threads) },
		"loadprop":     func() Mechanism { return Mechanisms.LoadProp(threads) },
		"gradient":     func() Mechanism { return Mechanisms.Gradient(threads) },
	}
	return admin.HandlerWithCollector(d.Exec, factories, col)
}

// RegisterPowerModel wires the simulated power substrate into the
// executive: a linear CPU power model over busy contexts, observed through
// a PDU emulation with the given sampling period (use
// DefaultPDUSamplePeriod for the paper's 13 samples/minute, or 0 for
// unlimited). It returns the model so callers can translate budgets.
func (d *DoPE) RegisterPowerModel(samplePeriod time.Duration) *power.Model {
	model := power.NewDefaultModel(d.Contexts().N())
	pdu := power.NewPDU(func() float64 {
		return model.Watts(d.Contexts().Busy())
	}, samplePeriod, d.Clock())
	d.Features().Register(platform.FeatureSystemPower, pdu.FeatureCB())
	return model
}

// DefaultPDUSamplePeriod is the paper's AP7892 PDU limit: 13 samples/min.
const DefaultPDUSamplePeriod = power.DefaultSamplePeriod

package dope_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dope"
	"dope/internal/platform"
	"dope/internal/queue"
)

// counterSpec is a minimal server loop over a work queue for API tests.
func counterSpec(work *queue.Queue[int], processed *atomic.Int64) *dope.NestSpec {
	return &dope.NestSpec{Name: "api", Alts: []*dope.AltSpec{{
		Name:   "loop",
		Stages: []dope.StageSpec{{Name: "worker", Type: dope.PAR}},
		Make: func(item any) (*dope.AltInstance, error) {
			return &dope.AltInstance{Stages: []dope.StageFns{{
				Fn: func(w *dope.Worker) dope.Status {
					if w.Suspending() {
						return dope.Suspended
					}
					_, ok, err := work.DequeueWhile(
						func() bool { return !w.Suspending() }, 0)
					if errors.Is(err, queue.ErrClosed) {
						return dope.Finished
					}
					if !ok {
						return dope.Suspended
					}
					w.Begin() //dopevet:ignore suspendcheck suspension is observed via the DequeueWhile predicate
					processed.Add(1)
					w.End()
					return dope.Executing
				},
				Load: func() float64 { return float64(work.Len()) },
			}}}, nil
		},
	}}}
}

func TestCreateDestroyLifecycle(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	d, err := dope.Create(counterSpec(work, &processed), dope.StaticGoal(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Goal().Name != "static" {
		t.Fatalf("goal = %q", d.Goal().Name)
	}
	for i := 0; i < 25; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if processed.Load() != 25 {
		t.Fatalf("processed = %d", processed.Load())
	}
}

func TestCreateRejectsBadSpec(t *testing.T) {
	if _, err := dope.Create(&dope.NestSpec{Name: ""}, dope.StaticGoal(2)); err == nil { //dopevet:ignore nestspec deliberately invalid spec under test
		t.Fatal("invalid spec accepted")
	}
}

func TestGoalConstructors(t *testing.T) {
	cases := []struct {
		goal dope.Goal
		name string
		mech string
	}{
		{dope.MinResponseTime(24, 8, 14), "min-response-time", "WQ-Linear"},
		{dope.MinResponseTimeWQTH(24, 8, 6), "min-response-time", "WQT-H"},
		{dope.MaxThroughput(24), "max-throughput", "TBF"},
		{dope.MaxThroughputUnderPower(24, 720), "max-throughput-under-power", "TPC"},
		{dope.CustomGoal("mine", 8, dope.Mechanisms.FDP(8)), "mine", "FDP"},
	}
	for _, c := range cases {
		if c.goal.Name != c.name {
			t.Errorf("goal name = %q, want %q", c.goal.Name, c.name)
		}
		if c.goal.Mechanism == nil || c.goal.Mechanism.Name() != c.mech {
			t.Errorf("goal %q mechanism = %v, want %s", c.name, c.goal.Mechanism, c.mech)
		}
	}
	if dope.StaticGoal(4).Mechanism != nil {
		t.Error("static goal must not adapt")
	}
	if dope.MaxThroughputUnderPower(24, 720).PowerBudget != 720 {
		t.Error("power budget not carried")
	}
}

func TestMechanismsCatalog(t *testing.T) {
	names := map[string]dope.Mechanism{
		"proportional":      dope.Mechanisms.Proportional(8),
		"WQT-H":             dope.Mechanisms.WQTH(8, 4, 2),
		"WQ-Linear":         dope.Mechanisms.WQLinear(8, 4, 10),
		"TB":                dope.Mechanisms.TB(8),
		"TBF":               dope.Mechanisms.TBF(8),
		"FDP":               dope.Mechanisms.FDP(8),
		"SEDA":              dope.Mechanisms.SEDA(4, 1),
		"TPC":               dope.Mechanisms.TPC(8, 500),
		"load-proportional": nil, // constructed internally; not in the catalog
	}
	for want, m := range names {
		if m == nil {
			continue
		}
		if m.Name() != want {
			t.Errorf("mechanism name = %q, want %q", m.Name(), want)
		}
	}
}

func TestRegisterPowerModel(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	d, err := dope.Create(counterSpec(work, &processed), dope.StaticGoal(4))
	if err != nil {
		t.Fatal(err)
	}
	model := d.RegisterPowerModel(0)
	if model.Peak() <= model.Idle() {
		t.Fatal("degenerate power model")
	}
	v, err := d.Features().Value(platform.FeatureSystemPower)
	if err != nil {
		t.Fatal(err)
	}
	if v < model.Idle() || v > model.Peak() {
		t.Fatalf("power reading %v outside [%v, %v]", v, model.Idle(), model.Peak())
	}
	work.Close()
	d.Destroy()
}

func TestAdaptiveGoalEndToEnd(t *testing.T) {
	// MaxThroughput over a tiny pipeline must reconfigure at least once.
	work := queue.New[int](0)
	out := queue.New[int](0)
	var consumed atomic.Int64
	spec := &dope.NestSpec{Name: "e2e", Alts: []*dope.AltSpec{{
		Name: "pipeline",
		Stages: []dope.StageSpec{
			{Name: "produce", Type: dope.SEQ},
			{Name: "consume", Type: dope.PAR},
		},
		Make: func(item any) (*dope.AltInstance, error) {
			out.Reopen() // drained and closed by the previous run's Fini
			return &dope.AltInstance{Stages: []dope.StageFns{
				{
					Fn: func(w *dope.Worker) dope.Status {
						v, ok, err := work.DequeueWhile(
							func() bool { return !w.Suspending() }, 0)
						if errors.Is(err, queue.ErrClosed) {
							return dope.Finished
						}
						if !ok {
							return dope.Suspended
						}
						w.Begin() //dopevet:ignore suspendcheck,tokenhold suspension observed via DequeueWhile; sleep simulates stage work
						time.Sleep(50 * time.Microsecond)
						w.End()
						out.Enqueue(v)
						return dope.Executing
					},
					Load: func() float64 { return float64(work.Len()) },
					Fini: out.Close,
				},
				{
					Fn: func(w *dope.Worker) dope.Status {
						_, ok, err := out.DequeueWhile(
							func() bool { return !w.Suspending() }, 0)
						if errors.Is(err, queue.ErrClosed) {
							return dope.Finished
						}
						if !ok {
							return dope.Suspended
						}
						w.Begin() //dopevet:ignore suspendcheck,tokenhold suspension observed via DequeueWhile; sleep simulates stage work
						time.Sleep(500 * time.Microsecond)
						consumed.Add(1)
						w.End()
						return dope.Executing
					},
					Load: func() float64 { return float64(out.Len()) },
				},
			}}, nil
		},
	}}}
	d, err := dope.Create(spec, dope.MaxThroughput(8),
		dope.WithControlInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if consumed.Load() != 300 {
		t.Fatalf("consumed = %d", consumed.Load())
	}
	if d.Reconfigurations() == 0 {
		t.Fatal("TBF never rebalanced the pipeline")
	}
	final := d.CurrentConfig()
	if final.Extents[1] <= 1 {
		t.Fatalf("consume stage never grew: %v", final)
	}
}

func TestDemandAndDefaultConfig(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	spec := counterSpec(work, &processed)
	cfg := dope.DefaultConfig(spec)
	if dope.Demand(spec, cfg) != 1 {
		t.Fatalf("default demand = %d", dope.Demand(spec, cfg))
	}
	cfg.Extents[0] = 6
	if dope.Demand(spec, cfg) != 6 {
		t.Fatalf("demand = %d", dope.Demand(spec, cfg))
	}
	work.Close()
}

func TestSetGoalSwitchesMechanismAtRuntime(t *testing.T) {
	// Start static, then hand the running system a throughput goal: the
	// administrator's §4 workflow. The pipeline must get rebalanced only
	// after the goal changes.
	work := queue.New[int](0)
	out := queue.New[int](4)
	var consumed atomic.Int64
	spec := &dope.NestSpec{Name: "switch", Alts: []*dope.AltSpec{{
		Name: "pipeline",
		Stages: []dope.StageSpec{
			{Name: "produce", Type: dope.SEQ},
			{Name: "consume", Type: dope.PAR},
		},
		Make: func(item any) (*dope.AltInstance, error) {
			out.Reopen() // drained and closed by the previous run's Fini
			return &dope.AltInstance{Stages: []dope.StageFns{
				{
					Fn: func(w *dope.Worker) dope.Status {
						if w.Suspending() {
							return dope.Suspended
						}
						v, ok, err := work.DequeueWhile(func() bool { return !w.Suspending() }, 0)
						if errors.Is(err, queue.ErrClosed) {
							return dope.Finished
						}
						if !ok {
							return dope.Suspended
						}
						w.Begin() //dopevet:ignore suspendcheck,tokenhold suspension observed via DequeueWhile; sleep simulates stage work
						time.Sleep(100 * time.Microsecond)
						w.End()
						out.Enqueue(v)
						return dope.Executing
					},
					Load: func() float64 { return float64(work.Len()) },
					Fini: out.Close,
				},
				{
					Fn: func(w *dope.Worker) dope.Status {
						_, err := out.Dequeue()
						if err != nil {
							return dope.Finished
						}
						w.Begin() //dopevet:ignore suspendcheck,tokenhold drain stage exits via queue close; sleep simulates stage work
						time.Sleep(time.Millisecond)
						consumed.Add(1)
						w.End()
						return dope.Executing
					},
					Load: func() float64 { return float64(out.Len()) },
				},
			}}, nil
		},
	}}}
	d, err := dope.Create(spec, dope.StaticGoal(8),
		dope.WithControlInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		work.Enqueue(i)
	}
	time.Sleep(30 * time.Millisecond)
	if d.Reconfigurations() != 0 {
		t.Fatal("static goal must not reconfigure")
	}
	d.SetGoal(dope.MaxThroughput(8))
	if d.Goal().Name != "max-throughput" {
		t.Fatalf("goal = %q", d.Goal().Name)
	}
	deadline := time.Now().Add(3 * time.Second)
	for d.Reconfigurations() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if d.Reconfigurations() == 0 {
		t.Fatal("new goal never acted")
	}
	for i := 100; i < 200; i++ {
		work.Enqueue(i)
	}
	work.Close()
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if consumed.Load() != 200 {
		t.Fatalf("consumed %d of 200 across the goal switch", consumed.Load())
	}
}

func TestAdminHandlerServes(t *testing.T) {
	work := queue.New[int](0)
	var processed atomic.Int64
	d, err := dope.Create(counterSpec(work, &processed), dope.MaxThroughput(4))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.AdminHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["contexts"].(float64) != 4 {
		t.Fatalf("stats = %v", stats)
	}
	// The catalog is wired: switching to fdp by name succeeds.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/mechanism",
		strings.NewReader(`{"name":"fdp"}`))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("PUT fdp: %d", r2.StatusCode)
	}
	if d.Mechanism() == nil || d.Mechanism().Name() != "FDP" {
		t.Fatal("catalog switch failed")
	}
	work.Close()
	d.Destroy()
}

package dope

import (
	"time"

	"dope/internal/core"
	"dope/internal/queue"
)

// This file provides a generic builder for the most common parallelism
// shape: a linear pipeline over a stream of items. The paper notes that
// "the process of defining the functors is mechanical — it can be
// simplified with compiler support" (§3.1); ChannelPipeline is that
// mechanical transformation as a library: it wires the inter-stage queues,
// the suspension-aware head, the Fini drain cascade, and the LoadCBs, so an
// application supplies only its per-stage transforms.

// PipeStage describes one stage of a built pipeline.
type PipeStage[T any] struct {
	// Name identifies the stage for monitoring and configuration.
	Name string
	// Par marks the stage parallelizable (DoPE may assign it any extent).
	Par bool
	// MinDoP and MaxDoP bound the extent when Par (both optional).
	MinDoP, MaxDoP int
	// Fn transforms one item. extent is the stage's current DoP extent,
	// for workloads whose per-item cost depends on coordination width.
	// It runs inside the monitored CPU section (Begin/End).
	Fn func(item T, extent int) T
}

// OverloadPolicy selects what a full inter-stage queue does with the next
// item: Block (backpressure, the default), ShedOldest (drop the head to
// admit the newcomer), or ShedNewest (refuse the newcomer). Re-exported
// from the queue package.
type OverloadPolicy = queue.OverloadPolicy

// Overload policies.
const (
	Block      = queue.Block
	ShedOldest = queue.ShedOldest
	ShedNewest = queue.ShedNewest
)

// PipelineOptions tune a built pipeline.
type PipelineOptions struct {
	// QueueCap bounds each inter-stage queue (default 8). Small caps keep
	// reconfiguration drains cheap and load signals honest.
	QueueCap int
	// Poll is the head stage's suspension-check interval while idle
	// (default 200µs).
	Poll time.Duration
	// Fused, when true, also declares a fused alternative that runs all
	// stages back to back in one parallel task — the TaskDescriptor choice
	// TBF's task fusion needs.
	Fused bool
	// Overload sets the inter-stage queues' full-queue policy. With a
	// shedding policy, dropped items never reach later stages or the done
	// callback; sheds are counted in each downstream stage's StageReport.
	Overload OverloadPolicy
}

// ChannelPipeline builds a NestSpec for a linear pipeline consuming items
// from src. The stream ends when src is closed and drained. done, if
// non-nil, observes each item leaving the last stage (completion
// accounting). The returned spec follows the drain protocol: on
// reconfiguration only the head stops pulling from src; in-flight items
// complete through the remaining stages before the pipeline respawns, so
// no item is ever lost or duplicated.
//
// The builder is the mechanical equivalent of the hand-written ports in
// internal/apps; use those as references when a loop needs structure this
// shape cannot express (nested loops, non-linear topologies).
func ChannelPipeline[T any](name string, src <-chan T, stages []PipeStage[T], done func(T), opts PipelineOptions) *NestSpec {
	if len(stages) == 0 {
		// Return a spec that fails validation, so Create reports the
		// mistake instead of this function panicking.
		return &NestSpec{Name: name}
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 8
	}
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Microsecond
	}
	// Persistent inter-stage queues: qs[i] feeds stage i+1.
	n := len(stages)
	qs := make([]*queue.Queue[T], n-1)
	for i := range qs {
		qs[i] = queue.NewWithPolicy[T](opts.QueueCap, opts.Overload)
	}

	specStages := make([]core.StageSpec, n)
	for i, st := range stages {
		t := core.SEQ
		if st.Par {
			t = core.PAR
		}
		specStages[i] = core.StageSpec{
			Name: st.Name, Type: t, MinDoP: st.MinDoP, MaxDoP: st.MaxDoP,
		}
	}

	// recvSrc performs a suspension-aware receive from the source channel.
	recvSrc := func(w *Worker) (T, bool, bool) {
		var zero T
		for {
			select {
			case v, ok := <-src:
				if !ok {
					return zero, false, true // stream ended
				}
				return v, true, false
			default:
			}
			if w.Suspending() {
				return zero, false, false
			}
			// Blocking receive with a poll bound so suspension stays
			// observable.
			select {
			case v, ok := <-src:
				if !ok {
					return zero, false, true
				}
				return v, true, false
			case <-time.After(opts.Poll):
			}
		}
	}

	pipelineAlt := &core.AltSpec{
		Name:   "pipeline",
		Stages: specStages,
		Make: func(item any) (*core.AltInstance, error) {
			for _, q := range qs {
				q.Reopen()
			}
			inst := &core.AltInstance{Stages: make([]core.StageFns, n)}
			for i := range stages {
				i := i
				fn := stages[i].Fn
				var in *queue.Queue[T]
				if i > 0 {
					in = qs[i-1]
				}
				var out *queue.Queue[T]
				if i < n-1 {
					out = qs[i]
				}
				sf := core.StageFns{}
				if i == 0 {
					sf.Fn = func(w *Worker) Status {
						if w.Suspending() {
							return Suspended
						}
						v, ok, closed := recvSrc(w)
						if closed {
							return Finished
						}
						if !ok {
							return Suspended
						}
						// The item is already claimed, so even a Suspended
						// window processes and forwards it before exiting.
						w.Begin()
						v = fn(v, w.Extent())
						st := w.End()
						if out != nil {
							out.Enqueue(v)
						} else if done != nil {
							done(v)
						}
						if st == Suspended {
							return Suspended
						}
						return Executing
					}
				} else {
					sf.Fn = func(w *Worker) Status {
						v, err := in.Dequeue()
						if err != nil {
							return Finished
						}
						// Drain stage: it exits only when the upstream queue
						// closes, so items queued before a suspension survive
						// an alternative switch. Begin/End statuses are
						// deliberately not propagated.
						w.Begin() //dopevet:ignore suspendcheck drain stage: exit is driven by upstream queue close
						v = fn(v, w.Extent())
						w.End()
						if out != nil {
							out.Enqueue(v)
						} else if done != nil {
							done(v)
						}
						return Executing
					}
					q := in
					sf.Load = func() float64 { return float64(q.Len()) }
					sf.Shed = q.Shed
					sf.Sojourn = q.MeanSojourn
				}
				if out != nil {
					sf.Fini = out.Close
				}
				inst.Stages[i] = sf
			}
			return inst, nil
		},
	}

	alts := []*core.AltSpec{pipelineAlt}
	if opts.Fused {
		alts = append(alts, &core.AltSpec{
			Name:   "fused",
			Stages: []core.StageSpec{{Name: "fused", Type: core.PAR}},
			Make: func(item any) (*core.AltInstance, error) {
				return &core.AltInstance{Stages: []core.StageFns{{
					Fn: func(w *Worker) Status {
						if w.Suspending() {
							return Suspended
						}
						v, ok, closed := recvSrc(w)
						if closed {
							return Finished
						}
						if !ok {
							return Suspended
						}
						// As above: the claimed item is finished and handed
						// off before a Suspended status is propagated.
						w.Begin()
						for _, fs := range stages {
							v = fs.Fn(v, w.Extent())
						}
						st := w.End()
						if done != nil {
							done(v)
						}
						if st == Suspended {
							return Suspended
						}
						return Executing
					},
				}}}, nil
			},
		})
	}
	return &NestSpec{Name: name, Alts: alts}
}
